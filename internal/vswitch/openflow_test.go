package vswitch

import (
	"testing"

	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/trafficgen"
)

func newOpenFlowSwitch(t *testing.T, scn trafficgen.Scenario) (*Switch, *trafficgen.Workload, *cpu.Thread) {
	t.Helper()
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	cfg := DefaultConfig()
	cfg.OpenFlow = true
	sw, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trafficgen.Generate(scn, 99)
	if err := sw.InstallRules([]RuleInstaller{workloadInstaller{w}}); err != nil {
		t.Fatal(err)
	}
	sw.Warm()
	return sw, w, cpu.NewThread(p.Hier, 0)
}

func TestOpenFlowRulesInstallIntoSlowPath(t *testing.T) {
	sw, _, _ := newOpenFlowSwitch(t, smallScenario)
	if sw.Open == nil {
		t.Fatal("OpenFlow layer missing")
	}
	if sw.Open.RuleCount() == 0 {
		t.Fatal("rules did not install into the OpenFlow layer")
	}
	if sw.Mega.RuleCount() != 0 {
		t.Fatal("MegaFlow layer must start empty and learn")
	}
}

func TestOpenFlowClassifiesAndLearnsMegaflows(t *testing.T) {
	sw, w, th := newOpenFlowSwitch(t, smallScenario)
	// Every packet still classifies correctly, via the slow path at first.
	for i := 0; i < 2000; i++ {
		pkt, fi := w.NextPacket()
		m, ok := sw.ProcessPacket(th, &pkt)
		if !ok {
			t.Fatalf("packet %d unclassified", i)
		}
		if int(m.RuleID) != w.FlowRule[fi]+1 {
			t.Fatalf("packet %d matched rule %d, want %d", i, m.RuleID, w.FlowRule[fi]+1)
		}
	}
	if sw.OpenFlowHits() == 0 {
		t.Fatal("slow path never consulted")
	}
	// Megaflows were generated: the fast layer now holds learned rules and
	// absorbs most traffic.
	if sw.Mega.RuleCount() == 0 {
		t.Fatal("no megaflows learned from OpenFlow results")
	}
	hits, _ := sw.MegaStats()
	if hits == 0 {
		t.Fatal("learned megaflows never hit")
	}
	// Steady state: the slow path goes quiet ("seldom accessed", §3.1).
	before := sw.OpenFlowHits()
	for i := 0; i < 2000; i++ {
		pkt, _ := w.NextPacket()
		sw.ProcessPacket(th, &pkt)
	}
	after := sw.OpenFlowHits()
	if float64(after-before) > 100 {
		t.Fatalf("slow path still hot in steady state: %d hits in 2000 packets", after-before)
	}
	if sw.Breakdown()[StageOpenFlow] == 0 {
		t.Fatal("OpenFlow stage charged no cycles")
	}
}
