package halo

import (
	"math"
	"testing"

	"halo/internal/sim"
)

func TestFlowRegisterEmptyEstimatesZero(t *testing.T) {
	f := NewFlowRegister(32)
	if est := f.Estimate(); est != 0 {
		t.Fatalf("empty register estimate = %v, want 0", est)
	}
}

func TestFlowRegisterSingleFlow(t *testing.T) {
	f := NewFlowRegister(32)
	for i := 0; i < 100; i++ {
		f.Observe(0xdeadbeef) // same flow repeatedly
	}
	est := f.Estimate()
	if est < 0.5 || est > 2 {
		t.Fatalf("single-flow estimate = %v, want ~1", est)
	}
}

func TestFlowRegisterAccuracyAcrossSizes(t *testing.T) {
	// Paper Fig. 8b: a register of m bits accurately estimates up to ~2m
	// flows. Check relative error stays small while flows <= 2m.
	for _, m := range []uint{8, 16, 32, 64} {
		for _, flows := range []int{int(m) / 2, int(m), int(m) * 2} {
			var sumErr float64
			const trials = 50
			for trial := 0; trial < trials; trial++ {
				f := NewFlowRegister(m)
				r := sim.NewRand(uint64(trial)*7919 + uint64(m))
				for i := 0; i < flows; i++ {
					flowHash := r.Uint64()
					// Each flow observed several times.
					for j := 0; j < 5; j++ {
						f.Observe(flowHash)
					}
				}
				sumErr += math.Abs(f.Estimate()-float64(flows)) / float64(flows)
			}
			meanErr := sumErr / trials
			if meanErr > 0.35 {
				t.Errorf("m=%d flows=%d: mean relative error %.2f", m, flows, meanErr)
			}
		}
	}
}

func TestFlowRegisterSaturation(t *testing.T) {
	f := NewFlowRegister(8)
	r := sim.NewRand(1)
	for i := 0; i < 10000; i++ {
		f.Observe(r.Uint64())
	}
	if !f.Saturated() {
		t.Fatal("register not saturated after 10k random flows")
	}
	if est := f.Estimate(); est < float64(8)*math.Log(8) {
		t.Fatalf("saturated estimate %v below the expressible maximum", est)
	}
}

func TestFlowRegisterReset(t *testing.T) {
	f := NewFlowRegister(32)
	f.Observe(123)
	f.Reset()
	if f.Estimate() != 0 {
		t.Fatal("reset did not clear the register")
	}
}

func TestFlowRegisterMerge(t *testing.T) {
	a := NewFlowRegister(32)
	b := NewFlowRegister(32)
	r := sim.NewRand(2)
	hashes := make([]uint64, 20)
	for i := range hashes {
		hashes[i] = r.Uint64()
	}
	for i, h := range hashes {
		if i%2 == 0 {
			a.Observe(h)
		} else {
			b.Observe(h)
		}
	}
	union := NewFlowRegister(32)
	union.Merge(a)
	union.Merge(b)
	est := union.Estimate()
	if est < 10 || est > 40 {
		t.Fatalf("merged estimate = %v, want ~20", est)
	}
}

func TestFlowRegisterMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched merge did not panic")
		}
	}()
	NewFlowRegister(32).Merge(NewFlowRegister(64))
}

func TestObserveKeyConsistent(t *testing.T) {
	a := NewFlowRegister(32)
	b := NewFlowRegister(32)
	key := []byte("flow-key-1")
	a.ObserveKey(key)
	a.ObserveKey(key)
	b.ObserveKey(key)
	if a.Estimate() != b.Estimate() {
		t.Fatal("repeated observations of one key changed the estimate")
	}
}
