package stats

import (
	"encoding/json"
	"testing"
)

// TestBucketMappingHighRes checks index/upper consistency at every
// supported resolution, the way TestBucketMapping pins the default layout.
func TestBucketMappingHighRes(t *testing.T) {
	for b := uint(DefaultSubBits); b <= maxSubBits; b++ {
		for _, v := range []uint64{0, 1, 15, 16, 17, 255, 256, 1023, 1024, 99_999, 1 << 40, 1<<63 + 12345} {
			idx := bucketIndexRes(v, b)
			if up := bucketUpperRes(idx, b); up < v {
				t.Fatalf("res %d: bucketUpper(%d) = %d < observed %d", b, idx, up, v)
			}
			if idx > 0 && bucketUpperRes(idx-1, b) >= v {
				t.Fatalf("res %d: value %d not in its tightest bucket %d", b, v, idx)
			}
		}
	}
}

// TestHighResQuantileError proves the point of the high-resolution layout:
// the p99.9 bucket upper bound stays within 2^-subBits of the true value,
// where the default resolution is ~16x coarser.
func TestHighResQuantileError(t *testing.T) {
	const n = 100_000
	lo, hi := NewHistogram(), NewHistogramRes(HighResSubBits)
	for i := uint64(1); i <= n; i++ {
		// A skewed latency-like shape: most values small, a long tail.
		v := i
		lo.Observe(v)
		hi.Observe(v)
	}
	exact := uint64(99_900) // the p99.9 observation of 1..100000
	q := 0.999
	loErr := float64(lo.Quantile(q)-exact) / float64(exact)
	hiErr := float64(hi.Quantile(q)-exact) / float64(exact)
	if hiErr < 0 || loErr < 0 {
		t.Fatalf("quantile upper bounds must not undershoot: lo %f hi %f", loErr, hiErr)
	}
	if hiErr > 1.0/float64(int(1)<<HighResSubBits) {
		t.Fatalf("high-res p99.9 error %.4f exceeds bound %.4f", hiErr, 1.0/float64(int(1)<<HighResSubBits))
	}
	if hiErr >= loErr && loErr != 0 {
		t.Fatalf("high-res error %.4f not tighter than default %.4f", hiErr, loErr)
	}
}

func TestHistogramResJSONRoundTrip(t *testing.T) {
	h := NewHistogramRes(HighResSubBits)
	for _, v := range []uint64{3, 900, 900, 70_000, 1 << 30} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.res() != HighResSubBits {
		t.Fatalf("resolution did not round-trip: %d", back.res())
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if h.Quantile(q) != back.Quantile(q) {
			t.Fatalf("quantile %f diverged after round trip: %d vs %d", q, h.Quantile(q), back.Quantile(q))
		}
	}
	// Default-resolution histograms keep the historical byte shape: no
	// "res" key may appear (simulator documents are byte-compared in CI).
	d := NewHistogram()
	d.Observe(42)
	data, err = json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"count":1,"sum":42,"buckets":"37:1"}` {
		t.Fatalf("default-resolution encoding changed shape: %s", data)
	}
	var bad Histogram
	if err := json.Unmarshal([]byte(`{"count":1,"sum":1,"res":99,"buckets":"1:1"}`), &bad); err == nil {
		t.Fatal("out-of-range resolution decoded without error")
	}
}

// TestHistogramMergeAcrossResolutions merges a high-res histogram into a
// default one and vice versa: counts and sums carry exactly, quantiles stay
// within the coarser layout's error bound.
func TestHistogramMergeAcrossResolutions(t *testing.T) {
	hi, lo := NewHistogramRes(HighResSubBits), NewHistogram()
	for i := uint64(1); i <= 1000; i++ {
		hi.Observe(i * 97)
		lo.Observe(i * 97)
	}
	merged := NewHistogram()
	merged.Merge(hi) // re-quantized through bucket uppers
	if merged.Count() != hi.Count() || merged.Sum() != hi.Sum() {
		t.Fatalf("merge dropped mass: count %d sum %d", merged.Count(), merged.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.999} {
		got, want := merged.Quantile(q), lo.Quantile(q)
		// Re-quantizing via uppers can push an observation at a bucket edge
		// into the next coarse bucket; allow one default-resolution step.
		if got < want || float64(got-want) > float64(want)/8 {
			t.Fatalf("q%.3f after cross-res merge = %d, native default = %d", q, got, want)
		}
	}

	up := NewHistogramRes(HighResSubBits)
	up.Merge(lo)
	if up.Count() != lo.Count() || up.Sum() != lo.Sum() {
		t.Fatalf("upward merge dropped mass")
	}
}
