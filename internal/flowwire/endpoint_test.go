package flowwire

import (
	"strings"
	"testing"
)

func TestParseEndpoint(t *testing.T) {
	cases := []struct {
		in   string
		want Endpoint
	}{
		{"tcp://127.0.0.1:7070", Endpoint{TransportTCP, "127.0.0.1:7070"}},
		{"tcp://[::1]:7070", Endpoint{TransportTCP, "[::1]:7070"}},
		{"unix:///tmp/flow.sock", Endpoint{TransportUnix, "/tmp/flow.sock"}},
		{"shm:///dev/shm/flow.ring", Endpoint{TransportShm, "/dev/shm/flow.ring"}},
	}
	for _, c := range cases {
		got, err := ParseEndpoint(c.in)
		if err != nil {
			t.Errorf("ParseEndpoint(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseEndpoint(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String round-trips through ParseEndpoint.
		rt, err := ParseEndpoint(got.String())
		if err != nil || rt != got {
			t.Errorf("round-trip %q -> %q -> %+v (%v)", c.in, got.String(), rt, err)
		}
	}
}

func TestParseEndpointDefault(t *testing.T) {
	got, err := ParseEndpointDefault("127.0.0.1:7070", TransportTCP)
	if err != nil || got != (Endpoint{TransportTCP, "127.0.0.1:7070"}) {
		t.Fatalf("bare addr = %+v, %v", got, err)
	}
	got, err = ParseEndpointDefault("/tmp/x.sock", TransportUnix)
	if err != nil || got != (Endpoint{TransportUnix, "/tmp/x.sock"}) {
		t.Fatalf("bare path = %+v, %v", got, err)
	}
	// An explicit scheme wins over the default.
	got, err = ParseEndpointDefault("unix:///tmp/x.sock", TransportTCP)
	if err != nil || got != (Endpoint{TransportUnix, "/tmp/x.sock"}) {
		t.Fatalf("scheme over default = %+v, %v", got, err)
	}
}

func TestParseEndpointErrors(t *testing.T) {
	cases := []struct {
		in   string
		frag string // expected substring of the error
	}{
		{"", "empty"},
		{"ftp://x:1", "unknown transport"},
		{"tcp://", "no address"},
		{"tcp://nohostport", "host:port"},
		{"unix://relative/path", "absolute"},
		{"shm://relative", "absolute"},
		{"unix://", "no address"},
	}
	for _, c := range cases {
		_, err := ParseEndpoint(c.in)
		if err == nil {
			t.Errorf("ParseEndpoint(%q): want error containing %q, got nil", c.in, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ParseEndpoint(%q) error %q does not mention %q", c.in, err, c.frag)
		}
	}
}

func TestParseEndpoints(t *testing.T) {
	eps, err := ParseEndpoints("cluster", "tcp://a:1, unix:///s.sock ,tcp://b:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Endpoint{
		{TransportTCP, "a:1"},
		{TransportUnix, "/s.sock"},
		{TransportTCP, "b:2"},
	}
	if len(eps) != len(want) {
		t.Fatalf("got %d endpoints, want %d", len(eps), len(want))
	}
	for i := range want {
		if eps[i] != want[i] {
			t.Errorf("endpoint %d = %+v, want %+v", i, eps[i], want[i])
		}
	}

	// Errors are positional and carry the flag name, matching listflag's
	// contract so cmd flag errors pinpoint the bad token.
	_, err = ParseEndpoints("cluster", "tcp://a:1,bogus://b:2")
	if err == nil || !strings.Contains(err.Error(), "-cluster") || !strings.Contains(err.Error(), "position 2") {
		t.Fatalf("bad token error = %v, want -cluster ... position 2", err)
	}
	_, err = ParseEndpoints("cluster", "tcp://a:1,tcp://a:1")
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate error = %v, want duplicate", err)
	}
}

func TestEndpointList(t *testing.T) {
	eps := []Endpoint{{TransportTCP, "a:1"}, {TransportUnix, "/s.sock"}}
	if got, want := EndpointList(eps), "tcp://a:1,unix:///s.sock"; got != want {
		t.Fatalf("EndpointList = %q, want %q", got, want)
	}
}
