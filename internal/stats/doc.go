package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// SchemaVersion identifies the document layout. Bump it on any breaking
// change to the JSON structure so downstream perf-tracking tooling can
// refuse documents it does not understand.
const SchemaVersion = "halo-stats/v1"

// Document is the machine-readable result of one halobench run: every
// experiment's rows plus the merged component counters and latency
// histograms. It intentionally carries no timestamps, worker counts or
// host information — the same simulation must produce identical bytes
// regardless of parallelism, which is what CI's serial-vs-pooled byte
// comparison asserts.
type Document struct {
	Schema      string          `json:"schema"`
	Quick       bool            `json:"quick"`
	Seed        uint64          `json:"seed"`
	Experiments []ExperimentDoc `json:"experiments"`
}

// ExperimentDoc is one experiment's results: rows in sweep-point order and
// the snapshot merged across all points.
type ExperimentDoc struct {
	ID       string     `json:"id"`
	Paper    string     `json:"paper"`
	Points   []PointDoc `json:"points"`
	Snapshot *Snapshot  `json:"snapshot,omitempty"`
}

// PointDoc is one sweep point: its label, its row (the experiment's native
// result struct, marshalled verbatim) and its component snapshot when the
// experiment builds a simulated platform (analytic experiments have none).
type PointDoc struct {
	Label    string          `json:"label"`
	Row      json.RawMessage `json:"row,omitempty"`
	Snapshot *Snapshot       `json:"snapshot,omitempty"`
}

// Experiment returns the experiment with the given ID, or nil.
func (d *Document) Experiment(id string) *ExperimentDoc {
	for i := range d.Experiments {
		if d.Experiments[i].ID == id {
			return &d.Experiments[i]
		}
	}
	return nil
}

// Encode serialises a document to indented, byte-stable JSON with a
// trailing newline.
func Encode(doc *Document) ([]byte, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a document, rejecting unknown schema versions.
func Decode(data []byte) (*Document, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("stats: decoding document: %w", err)
	}
	if doc.Schema != SchemaVersion {
		return nil, fmt.Errorf("stats: unsupported schema %q (want %q)", doc.Schema, SchemaVersion)
	}
	return &doc, nil
}

// Validate decodes a document and verifies it round-trips to the exact
// input bytes — proving the file was produced by Encode, carries the
// current schema, and lost nothing in transit.
func Validate(data []byte) (*Document, error) {
	doc, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if len(doc.Experiments) == 0 {
		return nil, fmt.Errorf("stats: document has no experiments")
	}
	again, err := Encode(doc)
	if err != nil {
		return nil, fmt.Errorf("stats: re-encoding document: %w", err)
	}
	if !bytes.Equal(data, again) {
		return nil, fmt.Errorf("stats: document does not round-trip byte-identically")
	}
	return doc, nil
}
