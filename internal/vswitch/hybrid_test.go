package vswitch

import (
	"testing"

	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/trafficgen"
)

func TestHybridEngineClassifiesIdentically(t *testing.T) {
	swS, wS, thS := newSwitch(t, EngineSoftware, smallScenario)
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	cfg := DefaultConfig()
	cfg.Engine = EngineHybrid
	swH, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wH := trafficgen.Generate(smallScenario, 99)
	if err := swH.InstallRules([]RuleInstaller{workloadInstaller{wH}}); err != nil {
		t.Fatal(err)
	}
	swH.Warm()
	thH := cpu.NewThread(p.Hier, 0)
	for i := 0; i < 1500; i++ {
		pktS, _ := wS.NextPacket()
		pktH, _ := wH.NextPacket()
		mS, okS := swS.ProcessPacket(thS, &pktS)
		mH, okH := swH.ProcessPacket(thH, &pktH)
		if okS != okH || mS != mH {
			t.Fatalf("hybrid diverged from software on packet %d", i)
		}
	}
	if _, ok := swH.HybridMode(); !ok {
		t.Fatal("hybrid switch does not report a mode")
	}
	if _, ok := swS.HybridMode(); ok {
		t.Fatal("software switch reports a hybrid mode")
	}
}

func TestHybridEngineSwitchesToSoftwareOnTinyFlowSet(t *testing.T) {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	cfg := DefaultConfig()
	cfg.Engine = EngineHybrid
	cfg.EMCInsertProb = 1 // learn eagerly so the EMC absorbs the tiny set
	sw, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scn := trafficgen.Scenario{Name: "tiny", Flows: 8, Rules: 1, Popularity: trafficgen.Uniform}
	w := trafficgen.Generate(scn, 5)
	if err := sw.InstallRules([]RuleInstaller{workloadInstaller{w}}); err != nil {
		t.Fatal(err)
	}
	sw.Warm()
	th := cpu.NewThread(p.Hier, 0)
	for i := 0; i < 60000; i++ {
		pkt, _ := w.NextPacket()
		if _, ok := sw.ProcessPacket(th, &pkt); !ok {
			t.Fatalf("packet %d unclassified", i)
		}
	}
	if mode, _ := sw.HybridMode(); mode != halo.ModeSoftware {
		t.Fatalf("hybrid mode = %v with 8 active flows; paper switches to software below 64", mode)
	}
}
