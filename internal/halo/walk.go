package halo

import (
	"halo/internal/cpu"
	"halo/internal/mem"
	"halo/internal/sim"
)

// Tree-walk support: paper §4.8 observes that the HALO accelerator's
// fetch-and-compare datapath also serves tree-structured lookups (EffiCuts
// and friends): "HALO accelerator can be used to conduct the comparison with
// the nodes in the tree". This file defines the node-memory contract the
// accelerator understands and the walk engine itself.
//
// A tree node occupies one cache line:
//
//	+0   uint32  magic (walkMagic)
//	+4   uint8   kind (0 = internal, 1 = leaf)
//	+5   uint8   field selector (internal): byte offset into the key
//	+6   uint16  width (internal): field width in bytes (1, 2 or 4)
//	+8   uint64  split value (internal): key[field] < split → left
//	+16  uint64  left child address   / leaf: result value
//	+24  uint64  right child address  / leaf: result-found flag
//
// The accelerator fetches the key once, then chases node lines, comparing
// the selected field at each level — exactly the bucket-walk datapath with a
// different address generator.

// WalkMagic identifies a HALO-walkable tree node.
const WalkMagic uint32 = 0x544e4f44 // "DONT" backwards: "TNOD"

// Node field offsets.
const (
	walkOffMagic = 0
	walkOffKind  = 4
	walkOffField = 5
	walkOffWidth = 6
	walkOffSplit = 8
	walkOffLeft  = 16
	walkOffRight = 24
)

// Node kinds.
const (
	WalkInternal uint8 = 0
	WalkLeaf     uint8 = 1
)

// WriteInternalNode lays an internal node out in memory.
func WriteInternalNode(s mem.Space, addr mem.Addr, field uint8, width uint16, split uint64, left, right mem.Addr) {
	mem.Write32(s, addr+walkOffMagic, WalkMagic)
	s.WriteAt(addr+walkOffKind, []byte{WalkInternal, field})
	mem.Write16(s, addr+walkOffWidth, width)
	mem.Write64(s, addr+walkOffSplit, split)
	mem.Write64(s, addr+walkOffLeft, uint64(left))
	mem.Write64(s, addr+walkOffRight, uint64(right))
}

// WriteLeafNode lays a leaf out in memory.
func WriteLeafNode(s mem.Space, addr mem.Addr, value uint64, found bool) {
	mem.Write32(s, addr+walkOffMagic, WalkMagic)
	s.WriteAt(addr+walkOffKind, []byte{WalkLeaf, 0})
	mem.Write64(s, addr+walkOffLeft, value)
	f := uint64(0)
	if found {
		f = 1
	}
	mem.Write64(s, addr+walkOffRight, f)
}

// WalkQuery asks an accelerator to chase a decision tree for a key.
type WalkQuery struct {
	Core     int
	RootAddr mem.Addr
	KeyAddr  mem.Addr
	KeyLen   int
	MaxDepth int // fault guard; 0 means the default
}

// defaultMaxWalkDepth bounds runaway walks on corrupt trees.
const defaultMaxWalkDepth = 64

// WalkResult reports a completed tree walk.
type WalkResult struct {
	Value  uint64
	Found  bool
	Fault  bool // bad node magic or depth exceeded
	Depth  int
	Issued sim.Cycle
	Done   sim.Cycle
	Slice  int
}

// ProcessWalk executes one tree walk on the accelerator: fetch the key,
// then per level fetch the node line and compare the selected field. The
// walk holds no locks (trees here are read-mostly; updates rebuild).
func (a *Accelerator) ProcessWalk(at sim.Cycle, q WalkQuery) WalkResult {
	a.stats.Queries++
	tx := a.acquireTxn()
	t := a.admit(at)
	issued := t

	res := a.access(t, q.KeyAddr, false)
	t = res.Done
	if mem.LineAddr(q.KeyAddr) != mem.LineAddr(q.KeyAddr+mem.Addr(q.KeyLen)-1) {
		res = a.access(t, q.KeyAddr+mem.Addr(q.KeyLen)-1, false)
		t = res.Done
	}
	key := tx.keyBuf(q.KeyLen)
	a.space.ReadAt(q.KeyAddr, key)

	maxDepth := q.MaxDepth
	if maxDepth <= 0 {
		maxDepth = defaultMaxWalkDepth
	}
	node := q.RootAddr
	r := WalkResult{Issued: issued, Slice: a.slice}
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			r.Fault = true
			break
		}
		res = a.access(t, node, false)
		t = res.Done + a.cfg.CompareLatency
		if mem.Read32(a.space, node+walkOffMagic) != WalkMagic {
			a.stats.Faults++
			r.Fault = true
			break
		}
		// Kind and field selector share a little-endian 16-bit load so the
		// hot walk loop stays on the allocation-free scalar path.
		hdr := mem.Read16(a.space, node+walkOffKind)
		if uint8(hdr) == WalkLeaf {
			r.Value = mem.Read64(a.space, node+walkOffLeft)
			r.Found = mem.Read64(a.space, node+walkOffRight) != 0
			r.Depth = depth
			break
		}
		field := int(hdr >> 8)
		width := int(mem.Read16(a.space, node+walkOffWidth))
		split := mem.Read64(a.space, node+walkOffSplit)
		v := fieldValue(key, field, width)
		next := node + walkOffRight
		if v < split {
			next = node + walkOffLeft
		}
		node = mem.Addr(mem.Read64(a.space, next))
		if node == 0 {
			r.Fault = true
			break
		}
	}
	if r.Found {
		a.stats.Hits++
	} else if !r.Fault {
		a.stats.Misses++
	}
	r.Done = t
	a.recordCompletion(t)
	a.releaseTxn(tx)
	return r
}

// fieldValue extracts a big-endian field of the given width from the key
// (out-of-range selectors read as zero — the hardware clamps).
func fieldValue(key []byte, off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 8
		if off+i < len(key) {
			v |= uint64(key[off+i])
		}
	}
	return v
}

// WalkB dispatches a blocking tree walk through the distributor (queries
// hash on the root address, like table lookups hash on the table address)
// and blocks the issuing thread until the result returns.
func (u *Unit) WalkB(th *cpu.Thread, rootAddr, keyAddr mem.Addr, keyLen int) WalkResult {
	th.ALU(1)
	th.Other(1)
	u.refreshBusyBits(th.Now)
	slice, _ := u.dist.Target(th.Core, uint64(rootAddr), uint64(keyAddr))
	r := u.accel[slice].ProcessWalk(th.Now+u.cmdDelay(th.Core, slice), WalkQuery{
		Core:     th.Core,
		RootAddr: rootAddr,
		KeyAddr:  keyAddr,
		KeyLen:   keyLen,
	})
	th.WaitUntil(r.Done + u.cmdDelay(r.Slice, th.Core))
	return r
}
