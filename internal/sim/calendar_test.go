package sim

import (
	"testing"
	"testing/quick"
)

func TestCalendarSerialisesOverlap(t *testing.T) {
	c := NewCalendarResource(0)
	if got := c.Claim(10, 5); got != 10 {
		t.Fatalf("first claim at %d, want 10", got)
	}
	if got := c.Claim(12, 5); got != 15 {
		t.Fatalf("overlapping claim at %d, want 15", got)
	}
	if got := c.Claim(100, 5); got != 100 {
		t.Fatalf("idle claim at %d, want 100", got)
	}
}

func TestCalendarBackfillsGaps(t *testing.T) {
	c := NewCalendarResource(0)
	c.Claim(100, 10) // busy [100,110)
	// An out-of-order claim at t=5 fits long before the existing interval
	// — the tail-latch Resource would have pushed it to 110.
	if got := c.Claim(5, 10); got != 5 {
		t.Fatalf("backfill claim at %d, want 5", got)
	}
	// A claim that fits exactly between the two intervals.
	if got := c.Claim(20, 80); got != 20 {
		t.Fatalf("gap claim at %d, want 20", got)
	}
	// Now [5,15) [20,100) [100,110) are busy: a claim at 10 for 6 cycles
	// must wait until 110 (gap [15,20) too small).
	if got := c.Claim(10, 6); got != 110 {
		t.Fatalf("forced-past claim at %d, want 110", got)
	}
}

func TestCalendarZeroOccupancy(t *testing.T) {
	c := NewCalendarResource(0)
	c.Claim(0, 0) // treated as 1
	if got := c.Claim(0, 1); got != 1 {
		t.Fatalf("claim after zero-occupancy at %d, want 1", got)
	}
}

func TestCalendarHorizonFoldsHistory(t *testing.T) {
	c := NewCalendarResource(100)
	for i := Cycle(0); i < 50; i++ {
		c.Claim(i*10, 5)
	}
	// History far behind the newest claim merged into the floor; claims in
	// the distant past are clamped to it rather than backfilled.
	got := c.Claim(0, 5)
	if got == 0 {
		t.Fatal("ancient claim backfilled beyond the horizon")
	}
	if len(c.intervals) > 64 {
		t.Fatalf("interval window grew to %d entries", len(c.intervals))
	}
}

func TestCalendarNoOverlapProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		rng := NewRand(seed)
		c := NewCalendarResource(0)
		n := int(nRaw%100) + 2
		type claim struct{ start, end Cycle }
		var claims []claim
		for i := 0; i < n; i++ {
			at := Cycle(rng.Intn(500))
			occ := Cycle(rng.Intn(9) + 1)
			s := c.Claim(at, occ)
			if s < at {
				return false
			}
			claims = append(claims, claim{s, s + occ})
		}
		// No two claims overlap.
		for i := 0; i < len(claims); i++ {
			for j := i + 1; j < len(claims); j++ {
				a, b := claims[i], claims[j]
				if a.start < b.end && b.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarUtilisation(t *testing.T) {
	c := NewCalendarResource(0)
	c.Claim(0, 50)
	c.Claim(100, 50)
	if u := c.Utilisation(0, 200); u < 0.49 || u > 0.51 {
		t.Fatalf("utilisation = %v, want 0.5", u)
	}
	if c.BusyUntil() != 150 {
		t.Fatalf("BusyUntil = %d", c.BusyUntil())
	}
}

// refCalendar is the pre-optimisation reference implementation: linear scan
// in Claim and a full merge/fold pass per claim. The binary-search Claim
// must reproduce its results — start cycles, floor and interval window —
// exactly, including horizon folding behaviour.
type refCalendar struct {
	intervals []interval
	floor     Cycle
	horizon   Cycle
}

func (c *refCalendar) claim(at Cycle, occupancy Cycle) (start Cycle) {
	if occupancy == 0 {
		occupancy = 1
	}
	if at < c.floor {
		at = c.floor
	}
	start = at
	idx := len(c.intervals)
	for i, iv := range c.intervals {
		if iv.end <= start {
			continue
		}
		if iv.start >= start+occupancy {
			idx = i
			break
		}
		start = iv.end
		idx = i + 1
	}
	iv := interval{start, start + occupancy}
	c.intervals = append(c.intervals, interval{})
	copy(c.intervals[idx+1:], c.intervals[idx:])
	c.intervals[idx] = iv
	cutoff := Cycle(0)
	if start > c.horizon {
		cutoff = start - c.horizon
	}
	out := c.intervals[:0]
	for _, iv := range c.intervals {
		if iv.end <= cutoff {
			if iv.end > c.floor {
				c.floor = iv.end
			}
			continue
		}
		if n := len(out); n > 0 && iv.start <= out[n-1].end {
			if iv.end > out[n-1].end {
				out[n-1].end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	c.intervals = out
	return start
}

// TestCalendarMatchesReferenceModel drives the optimised calendar and the
// reference side by side over randomized claim streams with deep
// out-of-order windows, including patterns that trigger horizon folding and
// neighbour merging on both sides of an insertion.
func TestCalendarMatchesReferenceModel(t *testing.T) {
	for _, horizon := range []Cycle{0, 64, 4096} {
		rng := NewRand(0xCA1 + uint64(horizon))
		c := NewCalendarResource(horizon)
		ref := &refCalendar{horizon: c.horizon}
		base := Cycle(0)
		for i := 0; i < 5000; i++ {
			// A slowly advancing base with a deep out-of-order window behind
			// it: claims land up to 2000 cycles in the past, and occasionally
			// far in the future.
			base += Cycle(rng.Intn(8))
			at := base
			if back := Cycle(rng.Intn(2000)); back < at {
				at -= back
			} else {
				at = 0
			}
			if rng.Intn(50) == 0 {
				at = base + Cycle(rng.Intn(10000))
			}
			occ := Cycle(rng.Intn(16)) // includes 0 (treated as 1)
			got, want := c.Claim(at, occ), ref.claim(at, occ)
			if got != want {
				t.Fatalf("claim %d (at=%d occ=%d): start %d, reference %d", i, at, occ, got, want)
			}
			if c.floor != ref.floor {
				t.Fatalf("claim %d: floor %d, reference %d", i, c.floor, ref.floor)
			}
			if len(c.intervals) != len(ref.intervals) {
				t.Fatalf("claim %d: %d intervals, reference %d\n%v\n%v",
					i, len(c.intervals), len(ref.intervals), c.intervals, ref.intervals)
			}
			for j := range c.intervals {
				if c.intervals[j] != ref.intervals[j] {
					t.Fatalf("claim %d: interval %d = %v, reference %v", i, j, c.intervals[j], ref.intervals[j])
				}
			}
		}
	}
}

// BenchmarkCalendarClaim measures Claim with a deep out-of-order window:
// sixteen interleaved timelines, each claiming monotonically but far apart
// from one another, the access pattern LLC ports see under the worker pool.
func BenchmarkCalendarClaim(b *testing.B) {
	c := NewCalendarResource(1 << 16)
	var lanes [16]Cycle
	for i := range lanes {
		lanes[i] = Cycle(i * 3000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane := i & 15
		lanes[lane] = c.Claim(lanes[lane]+2, 2) + 2
	}
}
