package sim

// Rand is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every stochastic choice in the repository draws from an
// explicitly seeded Rand so that simulations are reproducible and the
// workload generators never touch global math/rand state.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics when n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
