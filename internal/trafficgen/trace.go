package trafficgen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"halo/internal/classify"
	"halo/internal/packet"
)

// Trace file format: a magic header, a rule-set section (so a replayer can
// install the classifier state the trace was generated against), then one
// fixed-width record per packet. Everything is little-endian.
const traceMagic = 0x48414c54 // "HALT" — HALo Trace

// traceRecordBytes is the per-packet record size: the packed five-tuple
// plus a 2-byte payload length.
const traceRecordBytes = packet.KeyBytes + 2

// WriteTrace serialises a workload's rule set and n packets of its stream.
func (w *Workload) WriteTrace(out io.Writer, n int) error {
	bw := bufio.NewWriter(out)
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(w.Rules)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for _, r := range w.Rules {
		rec := make([]byte, 8+packet.KeyBytes+8)
		rec[0] = r.Mask.SrcIPBits
		rec[1] = r.Mask.DstIPBits
		rec[2] = boolByte(r.Mask.SrcPortWild)
		rec[3] = boolByte(r.Mask.DstPortWild)
		rec[4] = boolByte(r.Mask.ProtoWild)
		r.Pattern.Pack(rec[8 : 8+packet.KeyBytes])
		binary.LittleEndian.PutUint64(rec[8+packet.KeyBytes:], encodeTraceMatch(r))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	rec := make([]byte, traceRecordBytes)
	for i := 0; i < n; i++ {
		pkt, _ := w.NextPacket()
		pkt.Key().Pack(rec[:packet.KeyBytes])
		binary.LittleEndian.PutUint16(rec[packet.KeyBytes:], uint16(pkt.PayloadBytes))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeTraceMatch(r RuleSpec) uint64 {
	return uint64(r.Match.Priority)<<48 | uint64(r.Match.RuleID)<<16 |
		uint64(uint8(r.Match.Action.Kind))<<8 | uint64(uint8(r.Match.Action.Port))
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Trace is a parsed trace: the rule set plus a packet iterator.
type Trace struct {
	Rules   []RuleSpec
	packets []tracePacket
	next    int
}

type tracePacket struct {
	key     packet.FiveTuple
	payload uint16
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(in io.Reader) (*Trace, error) {
	br := bufio.NewReader(in)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trafficgen: reading trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != traceMagic {
		return nil, fmt.Errorf("trafficgen: not a trace file")
	}
	nRules := binary.LittleEndian.Uint32(hdr[4:])
	nPkts := binary.LittleEndian.Uint64(hdr[8:])
	if nRules > 1<<16 || nPkts > 1<<32 {
		return nil, fmt.Errorf("trafficgen: implausible trace header (%d rules, %d packets)", nRules, nPkts)
	}
	t := &Trace{}
	rec := make([]byte, 8+packet.KeyBytes+8)
	for i := uint32(0); i < nRules; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trafficgen: reading rule %d: %w", i, err)
		}
		m := binary.LittleEndian.Uint64(rec[8+packet.KeyBytes:])
		t.Rules = append(t.Rules, RuleSpec{
			Mask:    maskFromTrace(rec),
			Pattern: packet.UnpackFiveTuple(rec[8 : 8+packet.KeyBytes]),
			Match:   decodeTraceMatch(m),
		})
	}
	prec := make([]byte, traceRecordBytes)
	for i := uint64(0); i < nPkts; i++ {
		if _, err := io.ReadFull(br, prec); err != nil {
			return nil, fmt.Errorf("trafficgen: reading packet %d: %w", i, err)
		}
		t.packets = append(t.packets, tracePacket{
			key:     packet.UnpackFiveTuple(prec[:packet.KeyBytes]),
			payload: binary.LittleEndian.Uint16(prec[packet.KeyBytes:]),
		})
	}
	return t, nil
}

func maskFromTrace(rec []byte) (m classify.Mask) {
	m.SrcIPBits = rec[0]
	m.DstIPBits = rec[1]
	m.SrcPortWild = rec[2] != 0
	m.DstPortWild = rec[3] != 0
	m.ProtoWild = rec[4] != 0
	return
}

func decodeTraceMatch(v uint64) classify.Match {
	return classify.Match{
		Priority: uint16(v >> 48),
		RuleID:   uint32(v >> 16),
		Action:   classify.Action{Kind: classify.ActionKind(uint8(v >> 8)), Port: int(uint8(v))},
	}
}

// Len returns the number of packets in the trace.
func (t *Trace) Len() int { return len(t.packets) }

// NextPacket returns the next packet, wrapping at the end.
func (t *Trace) NextPacket() packet.Packet {
	p := t.packets[t.next%len(t.packets)]
	t.next++
	f := p.key
	return packet.Packet{
		SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort,
		Proto: f.Proto, PayloadBytes: int(p.payload),
	}
}

// InstallRules loads the trace's rule set into a tuple space.
func (t *Trace) InstallRules(ts *classify.TupleSpace) error {
	for _, r := range t.Rules {
		if err := ts.InsertRule(r.Mask, r.Pattern, r.Match); err != nil {
			return err
		}
	}
	return nil
}
