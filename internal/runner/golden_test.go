package runner

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"halo/internal/experiments"
	"halo/internal/stats"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// TestStatsDocumentGolden pins the exact bytes of a `halobench -json`
// document (schema halo-stats/v1) for the table4 experiment — the one
// experiment that is purely analytic, so its document is deterministic and
// machine-independent. Any schema drift (renamed fields, reordered keys, new
// counters, changed encoding) shows up here at PR time instead of silently
// breaking downstream tooling (cmd/benchdiff consumes these documents via
// benchjson.DecodeAny).
//
// Intentional schema changes: regenerate with
//
//	go test ./internal/runner -run StatsDocumentGolden -update-golden
//
// and describe the delta in EXPERIMENTS.md (see the "stats-document schema
// delta" methodology note).
func TestStatsDocumentGolden(t *testing.T) {
	r, ok := experiments.Find("table4")
	if !ok {
		t.Fatal("experiment table4 not registered")
	}
	cfg := experiments.DefaultConfig()
	cfg.Quick = true
	cfg.Seed = 0x48414c4f

	doc, err := RunDoc(Options{Workers: 1}, cfg, []experiments.Runner{r}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := stats.Encode(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The emitted bytes must themselves validate (decode → re-encode →
	// byte-identical), the same contract `halobench -validate` checks.
	if _, err := stats.Validate(data); err != nil {
		t.Fatalf("emitted document does not validate: %v", err)
	}

	golden := filepath.Join("testdata", "table4_quick_stats.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(data))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("halo-stats/v1 document shape drifted from golden file.\n%s\n"+
			"If the schema change is intentional, regenerate with -update-golden "+
			"and record the delta in EXPERIMENTS.md.", firstDiff(want, data))
	}
}

// firstDiff renders the first divergent line of two byte slices.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first diff at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}
