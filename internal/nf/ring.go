package nf

import (
	"halo/internal/cpu"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
)

// pktRing is the receive path shared by the hash-table network functions: a
// small DPDK-style buffer ring the NIC DMA-delivers packets into. Hash-table
// NFs key their tables on the raw header window, so the HALO engines can
// point LOOKUP instructions straight at the buffer — no key staging, exactly
// like the virtual switch datapath.
type pktRing struct {
	p    *halo.Platform
	base mem.Addr
	n    int
	next int
}

// ringBuffers matches the hot-set size of a recycling DPDK mempool (one RX
// burst).
const ringBuffers = 64

func newPktRing(p *halo.Platform) *pktRing {
	return &pktRing{p: p, base: p.Alloc.AllocLines(ringBuffers), n: ringBuffers}
}

// deliver DMA-writes the packet's wire form into the next buffer and returns
// the buffer address. No core time is charged (the NIC pays).
func (r *pktRing) deliver(pkt *packet.Packet) mem.Addr {
	addr := r.base + mem.Addr(r.next)*mem.LineSize
	r.next = (r.next + 1) % r.n
	var wire [mem.LineSize]byte
	if err := pkt.Marshal(wire[:]); err != nil {
		panic("nf: marshalling packet: " + err.Error())
	}
	r.p.Space.WriteAt(addr, wire[:])
	r.p.Hier.DMAWrite(addr)
	return addr
}

// rxCost charges the per-packet receive work: descriptor handling and header
// parsing. These NFs process RX bursts the way DPDK applications do — the
// header of packet i+1 is prefetched while packet i is processed — so in
// steady state the header bytes are L1-resident by parse time and the fetch
// latency is hidden; only the issue slots and parse instructions remain.
func rxCost(th *cpu.Thread, bufAddr mem.Addr) {
	th.Prefetch(bufAddr) // retire the (amortized) header prefetch
	th.Other(10)
	th.LocalLoad(10)
	th.LocalStore(4)
}

// headerKeyAddr returns the address of the raw-header flow key inside a
// delivered buffer.
func headerKeyAddr(bufAddr mem.Addr) mem.Addr {
	return bufAddr + packet.HeaderKeyOff
}

// srcIPKeyAddr returns the address of the 4-byte source-IP key inside a
// delivered buffer (wire offset 26).
func srcIPKeyAddr(bufAddr mem.Addr) mem.Addr {
	return bufAddr + 26
}
