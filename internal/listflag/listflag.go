// Package listflag parses the comma-separated sweep-list flags the load
// generators share (-mix uniform,zipf · -shards 1,2,4 · -conns 1,4). Every
// token is validated and errors name the flag, the offending token and its
// position — a bad token is a hard error, never a silently dropped sweep
// point.
package listflag

import (
	"fmt"
	"strconv"
	"strings"
)

// Strings splits a comma-separated flag value into trimmed, non-empty
// tokens. name is the flag's name (for error messages). An empty or
// all-whitespace value, or an empty token ("a,,b", trailing comma), is an
// error.
func Strings(name, value string) ([]string, error) {
	parts := strings.Split(value, ",")
	out := make([]string, 0, len(parts))
	for i, p := range parts {
		tok := strings.TrimSpace(p)
		if tok == "" {
			if len(parts) == 1 {
				return nil, fmt.Errorf("-%s: empty list", name)
			}
			return nil, fmt.Errorf("-%s: empty token at position %d (value %q)", name, i+1, value)
		}
		out = append(out, tok)
	}
	return out, nil
}

// Ints is Strings with every token parsed as a decimal integer.
func Ints(name, value string) ([]int, error) {
	toks, err := Strings(name, value)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(toks))
	for i, tok := range toks {
		n, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad token %q at position %d: want an integer", name, tok, i+1)
		}
		out[i] = n
	}
	return out, nil
}

// PositiveInts is Ints requiring every value > 0 — the shape of every sweep
// dimension (shard counts, connection counts, batch sizes).
func PositiveInts(name, value string) ([]int, error) {
	ns, err := Ints(name, value)
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		if n <= 0 {
			return nil, fmt.Errorf("-%s: token %d at position %d: want a positive integer", name, n, i+1)
		}
	}
	return ns, nil
}

// Uint64s is Strings with every token parsed as an unsigned 64-bit integer
// (decimal, or hex with an 0x prefix) — the shape of seed lists.
func Uint64s(name, value string) ([]uint64, error) {
	toks, err := Strings(name, value)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(toks))
	for i, tok := range toks {
		n, err := strconv.ParseUint(strings.TrimPrefix(tok, "0x"), base(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad token %q at position %d: want an unsigned integer", name, tok, i+1)
		}
		out[i] = n
	}
	return out, nil
}

func base(tok string) int {
	if strings.HasPrefix(tok, "0x") {
		return 16
	}
	return 10
}

// Enum is Strings with every token checked against the allowed set.
func Enum(name, value string, allowed ...string) ([]string, error) {
	toks, err := Strings(name, value)
	if err != nil {
		return nil, err
	}
	for i, tok := range toks {
		found := false
		for _, a := range allowed {
			if tok == a {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("-%s: unknown token %q at position %d (want one of %s)",
				name, tok, i+1, strings.Join(allowed, ", "))
		}
	}
	return toks, nil
}
