package flowserve

import (
	"runtime"

	"halo/internal/hashfn"
)

// Batch is reusable scratch for LookupMany. Like HALO's non-blocking lookup
// window, a batch belongs to one issuing context: a Batch is NOT safe for
// concurrent use, but any number of goroutines may run their own batches
// against the same table concurrently.
type Batch struct {
	t *Table

	kw    [][maxKeyWords]uint64
	h     []uint64
	sig   []uint16
	shard []uint32

	count []uint32 // per-shard key count, then prefix-summed into offsets
	order []uint32 // key indices grouped by shard
}

// NewBatch returns an empty batch for the table.
func (t *Table) NewBatch() *Batch {
	return &Batch{t: t, count: make([]uint32, len(t.shards)+1)}
}

// grow sizes the scratch for n keys.
func (b *Batch) grow(n int) {
	if cap(b.kw) < n {
		b.kw = make([][maxKeyWords]uint64, n)
		b.h = make([]uint64, n)
		b.sig = make([]uint16, n)
		b.shard = make([]uint32, n)
		b.order = make([]uint32, n)
	}
	b.kw = b.kw[:n]
	b.h = b.h[:n]
	b.sig = b.sig[:n]
	b.shard = b.shard[:n]
	b.order = b.order[:n]
}

// LookupMany looks up all keys, writing results[i] for each, and returns
// the number of hits. It is the software analogue of issuing LOOKUP_NB per
// key and polling completions with SNAPSHOT_READ: an issue pass hashes and
// routes every key, then each shard's group of keys is probed under a
// single seqlock window, amortising the read protocol (and its cache-line
// traffic) over the group.
//
// The issue pass records only the primary hash per key; candidate buckets
// are derived per region inside the probe, because an in-flight resize
// gives a shard two bucket geometries at once. Keys of the wrong length are
// misses counted in the table-level badlen counter, as in Lookup. results
// must be at least len(keys) long.
func (b *Batch) LookupMany(keys [][]byte, results []Result) int {
	t := b.t
	n := len(keys)
	_ = results[:n]
	b.grow(n)

	// Issue pass: hash, signature and shard per key.
	badLen := uint64(0)
	for i, key := range keys {
		if len(key) != t.keyLen {
			b.shard[i] = uint32(len(t.shards)) // route to the overflow group
			badLen++
			continue
		}
		keyToWords(key, &b.kw[i])
		h := hashfn.Hash(hashfn.SeedPrimary, key)
		b.h[i] = h
		b.sig[i] = hashfn.Signature(h)
		b.shard[i] = uint32(hashfn.ShardIndex(h, uint64(len(t.shards))))
	}

	// Group keys by shard with a counting sort (stable, allocation-free).
	for i := range b.count {
		b.count[i] = 0
	}
	for _, si := range b.shard {
		if si < uint32(len(t.shards)) {
			b.count[si]++
		}
	}
	var off uint32
	for i := range b.count {
		c := b.count[i]
		b.count[i] = off
		off += c
	}
	order := b.order[:off]
	for i, si := range b.shard {
		if si < uint32(len(t.shards)) {
			order[b.count[si]] = uint32(i)
			b.count[si]++
		}
	}
	// b.count[si] is now the end offset of shard si's group.

	hits := 0
	start := uint32(0)
	for si := 0; si < len(t.shards); si++ {
		end := b.count[si]
		if end == start {
			continue
		}
		hits += b.lookupGroup(t.shards[si], order[start:end], results)
		start = end
	}
	if badLen > 0 {
		t.badLen.Add(badLen)
		for i, key := range keys {
			if len(key) != t.keyLen {
				results[i] = Result{}
			}
		}
	}
	return hits
}

// lookupGroup probes one shard's group of keys under a shared seqlock
// window. If a writer invalidates the window, the whole group re-probes;
// after maxOptimistic attempts it runs once under the writer lock. The
// shard's region set is loaded once per attempt, so every key in the group
// probes one consistent old/current pair.
func (b *Batch) lookupGroup(sh *shard, group []uint32, results []Result) int {
	nw := b.t.keyWords
	sh.c.batches.Add(1)
	sh.c.batchKeys.Add(uint64(len(group)))
	sh.c.lookups.Add(uint64(len(group)))

	hits := 0
	probeAll := func(rp *regionPair) {
		hits = 0
		for _, i := range group {
			v, ok := sh.probe(rp, &b.kw[i], nw, b.h[i], b.sig[i])
			results[i] = Result{Value: v, OK: ok}
			if ok {
				hits++
			}
		}
	}
	for attempt := 0; attempt < maxOptimistic; attempt++ {
		s1 := sh.seq.Load()
		if s1&1 != 0 {
			sh.c.retries.Add(1)
			runtime.Gosched()
			continue
		}
		probeAll(sh.regions.Load())
		if sh.seq.Load() == s1 {
			sh.c.hits.Add(uint64(hits))
			return hits
		}
		sh.c.retries.Add(1)
	}
	sh.c.fallbacks.Add(1)
	sh.mu.Lock()
	probeAll(sh.regions.Load())
	sh.mu.Unlock()
	sh.c.hits.Add(uint64(hits))
	return hits
}
