package trafficgen

import (
	"testing"

	"halo/internal/classify"
	"halo/internal/mem"
	"halo/internal/packet"
)

func TestGenerateDeterministic(t *testing.T) {
	scn := Scenario{Name: "x", Flows: 1000, Rules: 4, Popularity: Zipf}
	a := Generate(scn, 42)
	b := Generate(scn, 42)
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("same seed generated different flows")
		}
	}
	for i := 0; i < 100; i++ {
		if a.NextFlow() != b.NextFlow() {
			t.Fatal("same seed generated different streams")
		}
	}
}

func TestFlowsDistinct(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 20000, Rules: 8, Popularity: Uniform}, 7)
	seen := make(map[packet.FiveTuple]bool)
	for _, f := range w.Flows {
		if seen[f] {
			t.Fatalf("duplicate flow %v", f)
		}
		seen[f] = true
	}
}

func TestEveryFlowMatchesItsRule(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 5000, Rules: 20, Popularity: Uniform}, 3)
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	ts := classify.NewTupleSpace(space, alloc, classify.FirstMatch, 1024)
	if err := w.InstallRules(ts); err != nil {
		t.Fatal(err)
	}
	if len(ts.Tuples()) != 20 {
		t.Fatalf("rules created %d tuples, want 20 (one mask each)", len(ts.Tuples()))
	}
	for i, f := range w.Flows {
		m, ok := ts.Classify(f)
		if !ok {
			t.Fatalf("flow %d (%v) matched no rule", i, f)
		}
		if int(m.RuleID) != w.FlowRule[i]+1 {
			t.Fatalf("flow %d matched rule %d, assigned %d", i, m.RuleID, w.FlowRule[i]+1)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 10000, Rules: 1, Popularity: Zipf}, 11)
	counts := make(map[int]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[w.NextFlow()]++
	}
	// Top-popular flow should take a markedly disproportionate share.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount)/draws < 0.02 {
		t.Fatalf("hottest flow only %.3f%% of traffic; Zipf skew missing",
			100*float64(maxCount)/draws)
	}
	if len(counts) < 1000 {
		t.Fatalf("only %d distinct flows drawn; tail missing", len(counts))
	}
}

func TestUniformCoverage(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 100, Rules: 1, Popularity: Uniform}, 13)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[w.NextFlow()]++
	}
	for i, c := range counts {
		if c < draws/100*70/100 || c > draws/100*130/100 {
			t.Fatalf("flow %d drawn %d times, want ~%d", i, c, draws/100)
		}
	}
}

func TestNextPacketMatchesFlow(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 50, Rules: 2, Popularity: Uniform}, 17)
	for i := 0; i < 200; i++ {
		p, fi := w.NextPacket()
		if p.Key() != w.Flows[fi] {
			t.Fatalf("packet key %v != flow %v", p.Key(), w.Flows[fi])
		}
	}
}

func TestStreamsIndependentAndDeterministic(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 5000, Rules: 2, Popularity: Zipf}, 23)
	// Same seed → identical stream; the stream draws do not disturb the
	// workload's own RNG or another stream.
	a1, a2, b := w.NewStream(100), w.NewStream(100), w.NewStream(200)
	wantWorkload := make([]int, 50)
	for i := range wantWorkload {
		wantWorkload[i] = w.NextFlow()
	}
	sawDiff := false
	for i := 0; i < 500; i++ {
		fa := a1.NextFlow()
		if fa != a2.NextFlow() {
			t.Fatal("same-seed streams diverged")
		}
		if fa != b.NextFlow() {
			sawDiff = true
		}
		if fa < 0 || fa >= len(w.Flows) {
			t.Fatalf("stream drew out-of-range flow %d", fa)
		}
	}
	if !sawDiff {
		t.Fatal("different-seed streams produced identical draws")
	}
	w2 := Generate(Scenario{Name: "x", Flows: 5000, Rules: 2, Popularity: Zipf}, 23)
	s := w2.NewStream(999)
	for i := 0; i < 200; i++ {
		s.NextFlow()
	}
	for i := range wantWorkload {
		if got := w2.NextFlow(); got != wantWorkload[i] {
			t.Fatal("stream draws disturbed the workload's own RNG sequence")
		}
	}
}

func TestStreamPacketMatchesFlow(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 50, Rules: 2, Popularity: Uniform}, 17)
	s := w.NewStream(3)
	for i := 0; i < 200; i++ {
		p, fi := s.NextPacket()
		if p.Key() != w.Flows[fi] {
			t.Fatalf("stream packet key %v != flow %v", p.Key(), w.Flows[fi])
		}
	}
}

func TestPaperScenariosShape(t *testing.T) {
	scns := PaperScenarios()
	if len(scns) != 5 {
		t.Fatalf("%d scenarios, want 5", len(scns))
	}
	prevFlows := 0
	for _, s := range scns {
		if s.Flows < prevFlows {
			t.Fatalf("scenarios not ordered by flow count: %+v", scns)
		}
		prevFlows = s.Flows
		if s.Rules < 1 || s.Rules > 20 {
			t.Fatalf("scenario %s has %d rules", s.Name, s.Rules)
		}
	}
	if scns[4].Rules != 20 {
		t.Fatal("gateway scenario must have 20 rules")
	}
}

func TestRandomTuplesDistinct(t *testing.T) {
	tuples := RandomTuples(5000, 23)
	seen := make(map[packet.FiveTuple]bool)
	for _, f := range tuples {
		if seen[f] {
			t.Fatal("duplicate tuple")
		}
		seen[f] = true
	}
	a := RandomTuples(100, 5)
	b := RandomTuples(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomTuples not deterministic")
		}
	}
}

// Regression: the free host bits for rule r were computed as 24-r instead
// of 24-max(0,r-8), so flows of high-index rules (long source prefixes) were
// squeezed into a handful of source addresses — rule 19 got 32 distinct
// SrcIPs no matter how many flows it owned.
func TestGenerateHighRuleSrcEntropy(t *testing.T) {
	w := Generate(Scenario{Name: "x", Flows: 4000, Rules: 20, Popularity: Uniform}, 29)
	srcs := make(map[uint32]bool)
	for i, f := range w.Flows {
		if w.FlowRule[i] != 19 {
			continue
		}
		srcs[f.SrcIP] = true
		// The source must still sit inside rule 19's prefix.
		if got := w.Rules[19].Mask.Apply(f); got.SrcIP != w.Rules[19].Pattern.SrcIP {
			t.Fatalf("flow %d src %08x escapes rule 19's prefix", i, f.SrcIP)
		}
	}
	// 200 flows over an 8192-address host space: expect nearly all distinct.
	if len(srcs) <= 100 {
		t.Fatalf("rule 19 flows use only %d distinct SrcIPs; host bits over-restricted", len(srcs))
	}
	if w.Retries > uint64(len(w.Flows))/10 {
		t.Fatalf("%d uniqueness retries for %d flows; flow space too clustered", w.Retries, len(w.Flows))
	}
}

func TestGenerateRejectsBadScenario(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad scenario accepted")
		}
	}()
	Generate(Scenario{Flows: 10, Rules: 40}, 1)
}
