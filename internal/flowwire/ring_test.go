package flowwire

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"unsafe"
)

// alignedMem returns size bytes backed by []uint64 storage, matching the
// 8-byte alignment an mmap'd segment provides — the ring's atomic cursor
// binding requires it.
func alignedMem(size int) []byte {
	words := make([]uint64, (size+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
}

// testRing builds a standalone ring over aligned memory: 32 control bytes
// (tail, head, cons flag, prod flag — packed; false sharing is a perf
// concern, not a correctness one, so tests don't need the 64-byte strides)
// followed by the data region.
func testRing(dataSize int) *spscRing {
	mem := alignedMem(32 + dataSize)
	r := bindRing(mem, 0, 8, 16, 24, mem[32:])
	return &r
}

func TestCheckRingBytes(t *testing.T) {
	for _, n := range []uint32{64, 128, 1 << 18, 1 << 30} {
		if err := checkRingBytes(n); err != nil {
			t.Errorf("checkRingBytes(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []uint32{0, 1, 32, 63, 65, 100, 1<<18 + 1, 1 << 31} {
		if err := checkRingBytes(n); err == nil {
			t.Errorf("checkRingBytes(%d) accepted a bad size", n)
		}
	}
}

// TestRingFullEmpty pins the boundary accounting: a full ring refuses
// writes, an empty ring refuses reads, and capacity is exactly the data
// size (free-running cursors have no wasted slot).
func TestRingFullEmpty(t *testing.T) {
	r := testRing(64)
	if got := r.writable(); got != 64 {
		t.Fatalf("fresh ring writable = %d, want 64", got)
	}
	if got := r.readable(); got != 0 {
		t.Fatalf("fresh ring readable = %d, want 0", got)
	}
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	if n := r.write(buf); n != 64 {
		t.Fatalf("write to empty ring = %d, want 64", n)
	}
	if n := r.write([]byte{0xff}); n != 0 {
		t.Fatalf("write to full ring = %d, want 0", n)
	}
	out := make([]byte, 64)
	if n := r.read(out); n != 64 || !bytes.Equal(out, buf) {
		t.Fatalf("read = %d bytes %v", n, out)
	}
	if n := r.read(out); n != 0 {
		t.Fatalf("read from empty ring = %d, want 0", n)
	}
}

// TestRingWrapAround drives the cursors far past the data size with
// co-prime chunk lengths so copies straddle the wrap boundary in every
// phase, verifying the byte stream end to end.
func TestRingWrapAround(t *testing.T) {
	const dataSize = 64
	r := testRing(dataSize)
	var seq byte
	chunk := make([]byte, 23) // co-prime with 64: wrap offset cycles
	out := make([]byte, 23)
	var want byte
	for iter := 0; iter < 100; iter++ {
		for i := range chunk {
			chunk[i] = seq
			seq++
		}
		for wrote := 0; wrote < len(chunk); {
			n := r.write(chunk[wrote:])
			if n == 0 {
				t.Fatalf("iter %d: ring full with only %d queued", iter, r.readable())
			}
			wrote += n
		}
		for got := 0; got < len(out); {
			n := r.read(out[got:])
			if n == 0 {
				t.Fatalf("iter %d: ring empty with %d outstanding", iter, len(out)-got)
			}
			got += n
		}
		for _, b := range out {
			if b != want {
				t.Fatalf("iter %d: got byte %d, want %d", iter, b, want)
			}
			want++
		}
	}
	if r.readable() != 0 {
		t.Fatalf("residue after drain: %d", r.readable())
	}
}

// TestRingConcurrentStress runs a real producer/consumer pair over one
// shared ring under the race detector: the detector sees the raw slice
// copies on both sides, so this is a direct check that the cursor
// publish/observe protocol orders the byte accesses.
func TestRingConcurrentStress(t *testing.T) {
	const total = 1 << 20
	r := testRing(256)
	done := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(1))
		buf := make([]byte, 97)
		var want byte
		got := 0
		for got < total {
			n := r.read(buf[:1+rng.Intn(len(buf)-1)])
			if n == 0 {
				runtime.Gosched() // empty: let the producer run (single-CPU boxes)
			}
			for _, b := range buf[:n] {
				if b != want {
					done <- fmt.Errorf("consumer mismatch at byte %d: got %d, want %d", got, b, want)
					return
				}
				want++
				got++
			}
		}
		done <- nil
	}()
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 131)
	var seq byte
	for sent := 0; sent < total; {
		chunk := buf[:1+rng.Intn(len(buf)-1)]
		if rem := total - sent; len(chunk) > rem {
			chunk = chunk[:rem]
		}
		for i := range chunk {
			chunk[i] = seq
			seq++
		}
		for wrote := 0; wrote < len(chunk); {
			n := r.write(chunk[wrote:])
			if n == 0 {
				runtime.Gosched() // full: let the consumer run
			}
			wrote += n
		}
		sent += len(chunk)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSegmentInitAttach round-trips a segment through the server-side init
// and client-side attach, and checks attach rejects every corrupted header.
func TestSegmentInitAttach(t *testing.T) {
	const ringSize = 128
	mem := alignedMem(segmentSize(ringSize, ringSize))
	seg, err := initSegment(mem, ringSize, ringSize)
	if err != nil {
		t.Fatal(err)
	}
	if seg.req.write([]byte("ping")) != 4 {
		t.Fatal("req write")
	}

	peer, err := attachSegment(mem)
	if err != nil {
		t.Fatalf("attachSegment: %v", err)
	}
	out := make([]byte, 8)
	if n := peer.req.read(out); n != 4 || string(out[:4]) != "ping" {
		t.Fatalf("peer read = %q", out[:n])
	}

	corrupt := func(name string, mutate func([]byte)) {
		m := alignedMem(segmentSize(ringSize, ringSize))
		if _, err := initSegment(m, ringSize, ringSize); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		if _, err := attachSegment(m); err == nil {
			t.Errorf("attachSegment accepted segment with %s", name)
		}
	}
	corrupt("bad magic", func(m []byte) { u32at(m, offMagic).Store(0xdead) })
	corrupt("bad version", func(m []byte) { u32at(m, offVersion).Store(shmLayoutVer + 1) })
	corrupt("non-power-of-two ring", func(m []byte) { u32at(m, offReqSize).Store(100) })
	corrupt("oversized claim", func(m []byte) { u32at(m, offRepSize).Store(1 << 24) })
	if _, err := attachSegment(alignedMem(100)); err == nil {
		t.Error("attachSegment accepted a sub-header mapping")
	}
	if _, err := initSegment(mem, ringSize, 256); err == nil {
		t.Error("initSegment accepted a mapping shorter than its geometry")
	}
}

// FuzzShmRing streams whole frames through an arbitrarily-sized ring in
// arbitrary chunk splits — frames tear across the wrap boundary and across
// chunk boundaries — then re-decodes them from the drained byte stream. The
// ring must be a perfectly transparent pipe for the codec above it.
func FuzzShmRing(f *testing.F) {
	f.Add(uint8(6), []byte("hello"), []byte{3, 7, 1})
	f.Add(uint8(8), bytes.Repeat([]byte{0xab}, 300), []byte{64, 64, 64})
	f.Add(uint8(6), []byte{}, []byte{1})
	f.Fuzz(func(t *testing.T, sizePow uint8, payload, splits []byte) {
		dataSize := 1 << (6 + int(sizePow)%7) // 64 .. 4096
		if len(payload) > dataSize*4 {
			payload = payload[:dataSize*4]
		}
		r := testRing(dataSize)

		// Three frames carrying slices of the payload, concatenated.
		var in []byte
		for i := 0; i < 3; i++ {
			p := payload[len(payload)*i/3 : len(payload)*(i+1)/3]
			in = AppendFrame(in, &Frame{Op: OpLookup, ReqID: uint64(i + 1), Payload: p})
		}

		// Push through the ring: write a fuzz-chosen chunk, drain fully,
		// repeat. Draining keeps the single goroutine from deadlocking on a
		// full ring while still exercising partial writes.
		var out []byte
		drain := make([]byte, dataSize)
		si := 0
		for sent := 0; sent < len(in); {
			chunk := 1
			if len(splits) > 0 {
				chunk = 1 + int(splits[si%len(splits)])
				si++
			}
			if rem := len(in) - sent; chunk > rem {
				chunk = rem
			}
			for wrote := 0; wrote < chunk; {
				n := r.write(in[sent+wrote : sent+chunk])
				wrote += n
				if n == 0 {
					m := r.read(drain)
					if m == 0 {
						t.Fatal("ring both full and empty")
					}
					out = append(out, drain[:m]...)
				}
			}
			sent += chunk
		}
		for {
			n := r.read(drain)
			if n == 0 {
				break
			}
			out = append(out, drain[:n]...)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("ring corrupted the stream: %d in, %d out", len(in), len(out))
		}

		// The drained stream must decode back to the three frames.
		rd := bytes.NewReader(out)
		var fr Frame
		var buf []byte
		var err error
		for i := 0; i < 3; i++ {
			p := payload[len(payload)*i/3 : len(payload)*(i+1)/3]
			buf, err = ReadFrameInto(rd, 0, &fr, buf)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if fr.ReqID != uint64(i+1) || !bytes.Equal(fr.Payload, p) {
				t.Fatalf("frame %d decoded wrong: reqID %d, %d payload bytes", i, fr.ReqID, len(fr.Payload))
			}
		}
	})
}
