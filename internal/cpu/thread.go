// Package cpu models the timing of software running on the simulated cores.
//
// Instead of simulating an out-of-order pipeline instruction by instruction,
// algorithms in this repository are written as ordinary Go code that charges
// a Thread for the instructions the compiled x86-64 code would execute:
// loads and stores go through the simulated cache hierarchy (and really read
// simulated memory at the functional layer above), arithmetic and control
// instructions are charged at the core's sustained IPC. That captures the
// four effects HALO exploits — instruction count, data-movement latency,
// locking, and parallelism — while keeping lookups cheap to simulate.
package cpu

import (
	"halo/internal/cache"
	"halo/internal/mem"
	"halo/internal/sim"
	"halo/internal/stats"
)

// Width is the sustained non-memory IPC of the modelled core: a Skylake-class
// 4-wide machine sustains close to its full width on the simple integer code
// of a hash-table probe when its loads hit the L1.
const Width = 4

// InstrCounts tallies retired instructions by the categories of paper
// Table 1.
type InstrCounts struct {
	Loads  uint64
	Stores uint64
	Arith  uint64
	Other  uint64
}

// Total returns the number of retired instructions.
func (c InstrCounts) Total() uint64 { return c.Loads + c.Stores + c.Arith + c.Other }

// Add accumulates another count set.
func (c *InstrCounts) Add(o InstrCounts) {
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Arith += o.Arith
	c.Other += o.Other
}

// StallStats attributes load-stall cycles to the structure that serviced the
// load, supporting the paper's Fig. 4 analysis.
type StallStats struct {
	CyclesByWhere [5]uint64 // indexed by cache.HitWhere
	LoadsByWhere  [5]uint64
}

// Thread is one software execution context bound to a core. Now advances as
// the thread executes; experiments interleave threads by comparing Now.
type Thread struct {
	Core int
	Now  sim.Cycle
	H    *cache.Hierarchy

	Counts InstrCounts
	Stalls StallStats

	// pendingFills tracks prefetches in flight so later demand loads to the
	// same line cannot complete before the fill does (and are attributed
	// to the structure the fill came from, not the L1 it lands in). The map
	// is allocated lazily by Prefetch: threads that never prefetch keep it
	// nil and demand loads skip the lookup entirely.
	pendingFills map[mem.Addr]pendingFill

	aluResidue uint64    // sub-cycle accumulator for IPC modelling
	winStart   sim.Cycle // measurement-window start (set by ResetCounts)

	// hists holds the thread's named latency histograms (lat.*), allocated
	// lazily so threads that never record pay nothing.
	hists map[string]*stats.Histogram
}

// NewThread creates a thread on the given core at cycle 0.
func NewThread(h *cache.Hierarchy, core int) *Thread {
	return &Thread{Core: core, H: h}
}

// pendingFill records an in-flight prefetch: when it completes and where
// the data is coming from.
type pendingFill struct {
	ready sim.Cycle
	where cache.HitWhere
}

// ALU charges n simple arithmetic instructions.
func (t *Thread) ALU(n int) {
	t.Counts.Arith += uint64(n)
	t.advance(n)
}

// Other charges n control-flow / miscellaneous instructions.
func (t *Thread) Other(n int) {
	t.Counts.Other += uint64(n)
	t.advance(n)
}

func (t *Thread) advance(n int) {
	t.aluResidue += uint64(n)
	t.Now += sim.Cycle(t.aluResidue / Width)
	t.aluResidue %= Width
}

// LocalLoad charges n loads that hit core-local, pipelined state — stack
// slots, spilled registers, already-resident metadata. An out-of-order core
// fully overlaps such loads, so they cost issue slots, not L1 latency, but
// they still retire and count toward the instruction profile (Table 1).
func (t *Thread) LocalLoad(n int) {
	t.Counts.Loads += uint64(n)
	t.Stalls.LoadsByWhere[cache.InL1] += uint64(n)
	t.advance(n)
}

// LocalStore charges n stores to core-local state (stack, spills).
func (t *Thread) LocalStore(n int) {
	t.Counts.Stores += uint64(n)
	t.advance(n)
}

// Load performs a demand load: the thread blocks until the data arrives.
// Loads that hit the L1 are effectively free beyond their issue slot — an
// out-of-order core hides L1 latency completely under surrounding work —
// while loads serviced farther away stall the dependent chain for their
// full latency, matching how the paper attributes stalls (§3.3).
func (t *Thread) Load(addr mem.Addr) cache.AccessResult {
	t.Counts.Loads++
	res := t.H.CoreAccess(t.Now, t.Core, addr, false)
	if len(t.pendingFills) > 0 {
		if fill, ok := t.pendingFills[mem.LineAddr(addr)]; ok {
			if fill.ready > res.Done {
				// Still waiting on the prefetch: the stall belongs to the
				// structure the fill is coming from.
				res.Done = fill.ready
				res.Where = fill.where
			}
			if fill.ready <= t.Now {
				delete(t.pendingFills, mem.LineAddr(addr))
			}
		}
	}
	t.Stalls.LoadsByWhere[res.Where]++
	if res.Where == cache.InL1 && res.Done <= t.Now+t.H.Config().L1Latency {
		t.Stalls.CyclesByWhere[res.Where]++
		t.advance(1)
		res.Done = t.Now
		return res
	}
	t.Stalls.CyclesByWhere[res.Where] += uint64(res.Done - t.Now)
	t.Now = res.Done
	return res
}

// Prefetch issues a non-blocking load (software prefetch). The thread pays
// one issue slot; the fill completes in the background and gates later
// demand loads to the same line.
func (t *Thread) Prefetch(addr mem.Addr) {
	t.Counts.Other++ // prefetch instructions retire as "other"
	res := t.H.CoreAccess(t.Now, t.Core, addr, false)
	line := mem.LineAddr(addr)
	if t.pendingFills == nil {
		t.pendingFills = make(map[mem.Addr]pendingFill)
	}
	if cur, ok := t.pendingFills[line]; !ok || res.Done > cur.ready {
		t.pendingFills[line] = pendingFill{ready: res.Done, where: res.Where}
	}
	t.advance(1)
}

// Store performs a store. Stores retire through the store buffer, so the
// thread only pays the issue slot; the coherence work is still charged to
// the hierarchy at the current cycle.
func (t *Thread) Store(addr mem.Addr) {
	t.Counts.Stores++
	t.H.CoreAccess(t.Now, t.Core, addr, true)
	t.advance(1)
}

// SnapshotRead performs the SNAPSHOT_READ instruction: a load that does not
// change line ownership.
func (t *Thread) SnapshotRead(addr mem.Addr) cache.AccessResult {
	t.Counts.Loads++
	res := t.H.SnapshotRead(t.Now, t.Core, addr)
	t.Stalls.CyclesByWhere[res.Where] += uint64(res.Latency())
	t.Stalls.LoadsByWhere[res.Where]++
	t.Now = res.Done
	return res
}

// WaitUntil advances the thread's clock to at least `at` (e.g. blocking on
// an accelerator result).
func (t *Thread) WaitUntil(at sim.Cycle) {
	if at > t.Now {
		t.Now = at
	}
}

// MPKL returns misses per thousand loads for the given service points: loads
// serviced at or beyond `beyond` count as misses of the nearer level. For
// example MPKL(cache.InLLC) is the thread's L2 miss rate per 1000 loads.
func (t *Thread) MPKL(beyond cache.HitWhere) float64 {
	var loads, misses uint64
	for w, n := range t.Stalls.LoadsByWhere {
		loads += n
		if cache.HitWhere(w) >= beyond {
			misses += n
		}
	}
	if loads == 0 {
		return 0
	}
	return 1000 * float64(misses) / float64(loads)
}

// StallRatio returns the fraction of the current measurement window's
// cycles spent waiting on loads serviced at or beyond `beyond`. The window
// starts at thread creation or the last ResetCounts call.
func (t *Thread) StallRatio(beyond cache.HitWhere) float64 {
	elapsed := t.Now - t.winStart
	if elapsed == 0 {
		return 0
	}
	var stall uint64
	for w, c := range t.Stalls.CyclesByWhere {
		if cache.HitWhere(w) >= beyond {
			stall += c
		}
	}
	return float64(stall) / float64(elapsed)
}

// Reset zeroes the thread's clock and counters, keeping its core binding.
// Only safe against a fresh hierarchy: shared port resources remember their
// busy-until cycles, so winding a thread's clock back to zero while reusing
// a hierarchy inflates every subsequent access. Use ResetCounts to start a
// measurement window mid-simulation.
func (t *Thread) Reset() {
	t.Now = 0
	t.ResetCounts()
}

// ResetCounts clears instruction and stall counters (latency histograms
// included) without touching the clock, marking the start of a measurement
// window.
func (t *Thread) ResetCounts() {
	t.Counts = InstrCounts{}
	t.Stalls = StallStats{}
	clear(t.pendingFills)
	t.aluResidue = 0
	t.winStart = t.Now
	t.hists = nil
}

// Record adds one cycle-cost observation to the thread's named latency
// histogram, created on first use. Component code calls this with the
// elapsed simulated cycles of an operation (a lookup, an insert, a whole
// packet) under the stable lat.* names documented in DESIGN.md.
func (t *Thread) Record(name string, cycles sim.Cycle) {
	if t.hists == nil {
		t.hists = make(map[string]*stats.Histogram)
	}
	h := t.hists[name]
	if h == nil {
		h = stats.NewHistogram()
		t.hists[name] = h
	}
	h.Observe(uint64(cycles))
}

// Hist returns the thread's named latency histogram, or nil if nothing was
// recorded under that name in the current measurement window.
func (t *Thread) Hist(name string) *stats.Histogram { return t.hists[name] }

// CollectInto merges the thread's instruction counts and latency histograms
// into a snapshot under the cpu.instr.* and lat.* names.
func (t *Thread) CollectInto(s *stats.Snapshot) {
	s.Add("cpu.instr.loads", t.Counts.Loads)
	s.Add("cpu.instr.stores", t.Counts.Stores)
	s.Add("cpu.instr.arith", t.Counts.Arith)
	s.Add("cpu.instr.other", t.Counts.Other)
	for name, h := range t.hists {
		s.MergeHist(name, h)
	}
}
