package halo

import (
	"halo/internal/cache"
	"halo/internal/cuckoo"
	"halo/internal/mem"
	"halo/internal/noc"
	"halo/internal/stats"
)

// Platform bundles one simulated machine: functional memory, DRAM timing,
// ring interconnect, cache hierarchy, and the HALO unit. Experiments build a
// Platform, create tables in its memory, and drive threads against it.
type Platform struct {
	Space *mem.Memory
	Alloc *mem.Allocator
	DRAM  *mem.DRAM
	Ring  *noc.Ring
	Hier  *cache.Hierarchy
	Unit  *Unit

	tables []*cuckoo.Table // tables created through NewTable, for snapshots
}

// PlatformConfig collects the per-component configurations.
type PlatformConfig struct {
	Cache cache.Config
	Ring  noc.RingConfig
	DRAM  mem.DRAMConfig
	Unit  UnitConfig
	// ArenaBytes sizes the simulated-memory allocation arena.
	ArenaBytes uint64
}

// DefaultPlatformConfig is the paper's Table 2 machine with HALO installed.
func DefaultPlatformConfig() PlatformConfig {
	return PlatformConfig{
		Cache:      cache.DefaultConfig(),
		Ring:       noc.DefaultRingConfig(),
		DRAM:       mem.DefaultDRAMConfig(),
		Unit:       DefaultUnitConfig(),
		ArenaBytes: 8 << 30,
	}
}

// NewPlatform builds and wires a simulated machine.
func NewPlatform(cfg PlatformConfig) *Platform {
	space := mem.NewMemory()
	alloc := mem.NewAllocator(mem.LineSize, cfg.ArenaBytes) // skip address 0
	dram := mem.NewDRAM(cfg.DRAM)
	ring := noc.NewRing(cfg.Ring)
	hier := cache.New(cfg.Cache, ring, dram)
	unit := NewUnit(cfg.Unit, hier, ring, space, alloc)
	return &Platform{Space: space, Alloc: alloc, DRAM: dram, Ring: ring, Hier: hier, Unit: unit}
}

// NewTable creates a cuckoo table in the platform's memory and registers it
// for snapshot collection.
func (p *Platform) NewTable(cfg cuckoo.Config) (*cuckoo.Table, error) {
	t, err := cuckoo.Create(p.Space, p.Alloc, cfg)
	if err != nil {
		return nil, err
	}
	p.tables = append(p.tables, t)
	return t, nil
}

// CollectInto gathers every platform component's counters into a snapshot:
// the cache hierarchy, all accelerators, the query distributor, and every
// table created through NewTable.
func (p *Platform) CollectInto(s *stats.Snapshot) {
	p.Hier.Stats().CollectInto(s)
	p.Unit.Stats().CollectInto(s)
	p.Unit.Distributor().CollectInto(s)
	for _, t := range p.tables {
		t.Stats().CollectInto(s)
	}
}

// WarmTable walks a table's metadata, buckets and key-value array into the
// LLC without charging time, implementing the paper's warm-up protocol
// (§5.2: 10K lookups before measuring).
func (p *Platform) WarmTable(t *cuckoo.Table) {
	p.Hier.WarmLLC(t.Base())
	for b := uint64(0); b < t.BucketCount(); b++ {
		p.Hier.WarmLLC(t.BucketAddr(b))
	}
	start, end := t.KVAddr(0), t.KVAddr(uint32(t.Capacity()-1))
	for a := mem.LineAddr(start); a <= end; a += mem.LineSize {
		p.Hier.WarmLLC(a)
	}
}
