package experiments

import (
	"fmt"
	"io"

	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/noc"
	"halo/internal/stats"
)

// AblationResult holds the design-choice sweeps DESIGN.md calls out: they
// quantify how much each HALO mechanism contributes.
type AblationResult struct {
	MetaCacheSpeedup float64 // metadata cache on vs off
	LockCostPct      float64 // hardware lock on vs off
	DepthCycles      map[int]float64
	DispatchCycles   map[string]float64
	Table            *metrics.Table
}

// ablationDepths and ablationPolicies fix the knob sweeps (and their
// point order).
var ablationDepths = []int{1, 4, 10, 16}

var ablationPolicyNames = []string{"by-table", "by-key-line", "round-robin"}

func ablationPolicy(name string) noc.DispatchPolicy {
	switch name {
	case "by-table":
		return noc.DispatchByTable
	case "by-key-line":
		return noc.DispatchByKeyLine
	default:
		return noc.DispatchRoundRobin
	}
}

// ablationLabels enumerates every knob setting, in render order: the
// metadata cache on/off pair, the lock-off run, the scoreboard-depth
// sweep, then the dispatch policies.
func ablationLabels() []string {
	labels := []string{"metacache-on", "metacache-off", "no-lock"}
	for _, d := range ablationDepths {
		labels = append(labels, fmt.Sprintf("depth-%d", d))
	}
	for _, n := range ablationPolicyNames {
		labels = append(labels, "dispatch-"+n)
	}
	return labels
}

// AblationsSweep decomposes the design-choice sweeps: every knob setting
// measures on its own platform, so every point is one number.
func AblationsSweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			labels := ablationLabels()
			pts := make([]Point, len(labels))
			for i, l := range labels {
				pts[i] = Point{Experiment: "ablations", Index: i, Label: l}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			lookups := pickSize(cfg, 1500, 6000)
			snap := pointSnapshot(cfg)
			var row any
			switch {
			case p.Index == 0: // metadata cache on
				row = runAblationPoint(lookups, func(u *halo.UnitConfig) {}, snap)
			case p.Index == 1: // metadata cache off: every query re-reads
				// the metadata line from the LLC.
				row = runAblationPoint(lookups, func(u *halo.UnitConfig) {
					u.Accel.MetaCacheTables = 1
					u.Accel.MetaCacheOff = true
				}, snap)
			case p.Index == 2: // hardware lock off: locking costs nothing
				// on the read path.
				row = runAblationPoint(lookups, func(u *halo.UnitConfig) { u.Accel.LockEnabled = false }, snap)
			case p.Index < 3+len(ablationDepths): // scoreboard depth:
				// deeper scoreboards absorb bursts.
				row = runAblationBurst(lookups, ablationDepths[p.Index-3], snap)
			default:
				// Dispatch policy. The by-table policy's payoff is metadata
				// locality: with more live tables than one metadata cache
				// holds, hashing by table keeps each table's metadata
				// resident on one accelerator, while round-robin thrashes
				// every cache. 24 tables > the 10-table capacity.
				name := ablationPolicyNames[p.Index-3-len(ablationDepths)]
				row = runAblationMultiTable(lookups, ablationPolicy(name), snap)
			}
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleAblations(rows).Table.Render(w)
		},
	}
}

// RunAblations sweeps the accelerator design choices.
func RunAblations(cfg Config) *AblationResult {
	return assembleAblations(runSerial(cfg, AblationsSweep()))
}

func assembleAblations(rows []any) *AblationResult {
	res := &AblationResult{
		DepthCycles:    map[int]float64{},
		DispatchCycles: map[string]float64{},
	}
	res.Table = metrics.NewTable("Ablations: HALO design choices", "knob", "setting", "cyc/lookup", "note")

	on := rows[0].(float64)
	off := rows[1].(float64)
	noLock := rows[2].(float64)
	res.MetaCacheSpeedup = off / on
	res.LockCostPct = (on - noLock) / on
	res.Table.AddRow("metadata-cache", "on", on, "")
	res.Table.AddRow("metadata-cache", "off", off, fmt.Sprintf("%.2fx slower", res.MetaCacheSpeedup))
	res.Table.AddRow("hardware-lock", "off", noLock, metrics.Percent(res.LockCostPct)+" of locked time")

	for i, depth := range ablationDepths {
		c := rows[3+i].(float64)
		res.DepthCycles[depth] = c
		res.Table.AddRow("scoreboard-depth", fmt.Sprintf("%d", depth), c, "burst workload")
	}
	for i, name := range ablationPolicyNames {
		c := rows[3+len(ablationDepths)+i].(float64)
		res.DispatchCycles[name] = c
		res.Table.AddRow("dispatch", name, c, "24 live tables")
	}
	return res
}

// runAblationMultiTable measures blocking lookups round-robining over 24
// tables under the given dispatch policy.
func runAblationMultiTable(lookups int, pol noc.DispatchPolicy, snap *stats.Snapshot) float64 {
	pcfg := halo.DefaultPlatformConfig()
	pcfg.Unit.Dispatch = pol
	p := halo.NewPlatform(pcfg)
	const nTables = 24
	fixtures := make([]*lookupFixture, nTables)
	for i := range fixtures {
		fixtures[i] = fixtureOn(p, 1<<10, 0.75)
	}
	th := fixtures[0].thread
	for i := 0; i < lookups/2; i++ {
		f := fixtures[i%nTables]
		p.Unit.LookupBAt(th, f.table.Base(), f.stageKeyDMA(uint64(i)))
	}
	start := th.Now
	for i := 0; i < lookups; i++ {
		f := fixtures[i%nTables]
		p.Unit.LookupBAt(th, f.table.Base(), f.stageKeyDMA(uint64(i*13)))
	}
	collectInto(snap, p, th)
	return float64(th.Now-start) / float64(lookups)
}

func runAblationPoint(lookups int, mutate func(*halo.UnitConfig), snap *stats.Snapshot) float64 {
	pcfg := halo.DefaultPlatformConfig()
	mutate(&pcfg.Unit)
	p := halo.NewPlatform(pcfg)
	f := fixtureOn(p, 1<<14, 0.75)
	for i := 0; i < lookups/2; i++ {
		p.Unit.LookupBAt(f.thread, f.table.Base(), f.stageKeyDMA(uint64(i)))
	}
	start := f.thread.Now
	for i := 0; i < lookups; i++ {
		p.Unit.LookupBAt(f.thread, f.table.Base(), f.stageKeyDMA(uint64(i*13)))
	}
	collectInto(snap, p, f.thread)
	return float64(f.thread.Now-start) / float64(lookups)
}

// runAblationBurst measures a bursty all-cores workload against one table,
// where the scoreboard depth governs queueing.
func runAblationBurst(lookups int, depth int, snap *stats.Snapshot) float64 {
	pcfg := halo.DefaultPlatformConfig()
	pcfg.Unit.Accel.ScoreboardDepth = depth
	p := halo.NewPlatform(pcfg)
	f := fixtureOn(p, 1<<14, 0.75)
	var lastDone float64
	a := p.Unit.Accelerator(0)
	keyAddr := f.stageKeyDMA(1)
	for i := 0; i < lookups; i++ {
		r := a.Process(0, halo.Query{Core: i % 16, TableAddr: f.table.Base(), KeyAddr: keyAddr})
		if float64(r.Done) > lastDone {
			lastDone = float64(r.Done)
		}
	}
	collectInto(snap, p, f.thread)
	return lastDone / float64(lookups)
}
