package flowwire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"halo/internal/flowserve"
	"halo/internal/stats"
)

// Client errors.
var (
	// ErrClientClosed reports a call on a Close()d client.
	ErrClientClosed = errors.New("flowwire: client closed")
	// ErrConnClosed reports the server hanging up with calls in flight
	// (e.g. it drained); the first underlying cause is kept by Err.
	ErrConnClosed = errors.New("flowwire: connection closed by server")
	// ErrCallTimeout reports a reply not arriving inside CallTimeout. A
	// timeout is per-call, not sticky: the connection keeps serving other
	// calls, and the late reply (if it ever lands) is counted and
	// discarded — never delivered to a different caller.
	ErrCallTimeout = errors.New("flowwire: call timed out")
)

// Options parametrises Dial. The zero value works.
type Options struct {
	// Transport selects the connection transport: TransportTCP (default),
	// or TransportUnix / TransportShm, in which case the address is a
	// filesystem path. The protocol and every client behavior are
	// transport-independent.
	//
	// Deprecated: dial a parsed Endpoint with DialEndpoint instead, which
	// carries the transport and address in one value. This field is kept as
	// a shim for split (transport, addr) callers and is ignored by
	// DialEndpoint.
	Transport string
	// Conns is the connection-pool size (default 1). Calls round-robin
	// across the pool; concurrent calls on one connection pipeline —
	// each is tagged with a reqID and matched to its reply, so many
	// goroutines can share few sockets.
	Conns int
	// DialTimeout bounds each connect + the HELLO handshake (default 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds each request write (default 30s).
	WriteTimeout time.Duration
	// CallTimeout bounds the wait for a reply (default 60s).
	CallTimeout time.Duration
	// MaxFrame bounds accepted reply frames (default DefaultMaxFrame).
	MaxFrame uint32
}

func (o *Options) applyDefaults() {
	if o.Transport == "" {
		o.Transport = TransportTCP
	}
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 60 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
}

// clientCounters tracks client-side failure visibility. The Reader/Writer
// interfaces have error-free read signatures, so transport failures are
// coerced into misses — these counters make that coercion observable: a
// load driver that sees hits drop can tell a cold table from a broken
// client (flowload -check fails on a nonzero error delta).
type clientCounters struct {
	errors      atomic.Uint64 // calls coerced into a miss/false by a failure
	timeouts    atomic.Uint64 // calls that hit CallTimeout
	lateReplies atomic.Uint64 // replies discarded: no caller was waiting
}

// Client is a remote flowserve table: it implements flowserve.Reader and
// flowserve.Writer over the wire protocol, so a *Client drops in wherever a
// *flowserve.Table serves (flowload's -remote mode drives both through one
// code path). Connection-level transport failures are sticky: the first one
// breaks the client, every later call fails fast, and Err reports the
// cause. Lookups on a broken client return misses, mirroring the
// interface's error-free read signatures — and every such coercion is
// counted (Counters, CollectInto), so callers can gate on the delta.
type Client struct {
	opts  Options
	ep    Endpoint
	hello HelloInfo
	conns []*cliConn
	rr    atomic.Uint64 // round-robin cursor

	calls sync.Pool // *pcall: pooled in-flight call slots

	errOnce sync.Once
	err     atomic.Value // error: first transport failure
	closed  atomic.Bool
	c       clientCounters
}

var (
	_ flowserve.Reader = (*Client)(nil)
	_ flowserve.Writer = (*Client)(nil)
)

// pcall is one in-flight call's slot: the reply channel the readLoop
// delivers on, a reusable payload buffer the readLoop fills (the reply's
// Payload aliases it — zero copies, zero steady-state allocations), and the
// call's pooled timeout timer. Ownership is explicit: a pcall registered in
// a conn's pending map is owned by the readLoop from the moment it is
// removed from the map until the channel send; before removal the caller
// can reclaim it (timeout path) by deleting the map entry under pmu. That
// handshake is what makes a late reply unable to reach the wrong caller: a
// pcall is only ever recycled by whichever side provably owns it.
type pcall struct {
	ch    chan Frame
	buf   []byte
	timer *time.Timer
}

func (cl *Client) getCall(d time.Duration) *pcall {
	pc := cl.calls.Get().(*pcall)
	if pc.timer == nil {
		pc.timer = time.NewTimer(d)
	} else {
		// Drain-before-Reset: the timer is not being received concurrently
		// (single owner), so this is the safe reuse pattern.
		if !pc.timer.Stop() {
			select {
			case <-pc.timer.C:
			default:
			}
		}
		pc.timer.Reset(d)
	}
	return pc
}

func (cl *Client) putCall(pc *pcall) {
	if pc == nil {
		return
	}
	pc.timer.Stop()
	cl.calls.Put(pc)
}

// cliConn is one pooled connection: writes serialise on wmu (reqID
// assignment + frame encode into the conn-owned wbuf scratch + flush), the
// reader goroutine matches reply reqIDs to waiting calls.
type cliConn struct {
	cl     *Client
	nc     net.Conn
	bw     *bufio.Writer
	wmu    sync.Mutex
	wbuf   []byte // request frame scratch, guarded by wmu
	nextID uint64

	pmu     sync.Mutex
	pending map[uint64]*pcall
	dead    bool
	deadErr error
}

// Dial connects a pool of opts.Conns connections to a flowserved at addr
// (over opts.Transport) and performs the HELLO handshake to learn the
// table geometry.
//
// Deprecated: new callers should parse a flowwire.Endpoint and use
// DialEndpoint; this split (Options.Transport, addr) form is kept as a
// shim for existing call sites.
func Dial(addr string, opts Options) (*Client, error) {
	ep, err := ParseEndpointDefault(addr, opts.Transport)
	if err != nil {
		return nil, err
	}
	return DialEndpoint(ep, opts)
}

// DialEndpoint connects a pool of opts.Conns connections to the flowserved
// at ep (whose transport overrides Options.Transport) and performs the
// HELLO handshake to learn the table geometry — and, on a cluster node, the
// node's shard-map epoch and identity.
func DialEndpoint(ep Endpoint, opts Options) (*Client, error) {
	opts.Transport = ep.Transport
	addr := ep.Addr
	opts.applyDefaults()
	cl := &Client{opts: opts, ep: ep}
	cl.calls.New = func() any { return &pcall{ch: make(chan Frame, 1)} }
	for i := 0; i < opts.Conns; i++ {
		nc, err := dialTransport(opts.Transport, addr, opts.DialTimeout)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("flowwire: dial %s %s: %w", opts.Transport, addr, err)
		}
		c := &cliConn{cl: cl, nc: nc, bw: bufio.NewWriterSize(nc, 64<<10), pending: make(map[uint64]*pcall)}
		cl.conns = append(cl.conns, c)
		go c.readLoop()
	}
	pc, f, err := cl.call(OpHello, nil)
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("flowwire: HELLO: %w", err)
	}
	if err := f.Status.Err(OpHello); err != nil {
		cl.putCall(pc)
		cl.Close()
		return nil, fmt.Errorf("flowwire: HELLO: %w", err)
	}
	cl.hello, err = parseHelloReply(f.Payload)
	cl.putCall(pc)
	if err != nil {
		cl.Close()
		return nil, err
	}
	if cl.hello.KeyLen <= 0 || cl.hello.KeyLen > flowserve.MaxKeyLen {
		cl.Close()
		return nil, fmt.Errorf("flowwire: HELLO reports key length %d", cl.hello.KeyLen)
	}
	return cl, nil
}

// Hello returns the table geometry reported at dial time.
func (cl *Client) Hello() HelloInfo { return cl.hello }

// Endpoint returns the endpoint this client dialed.
func (cl *Client) Endpoint() Endpoint { return cl.ep }

// KeyLen returns the remote table's fixed key length.
func (cl *Client) KeyLen() int { return cl.hello.KeyLen }

// Err returns the first transport failure, or nil. A load driver should
// check it after a run: a broken client serves misses, not panics.
func (cl *Client) Err() error {
	if e, ok := cl.err.Load().(error); ok {
		return e
	}
	return nil
}

// ClientCounters is a snapshot of the client-side failure counters.
type ClientCounters struct {
	Errors      uint64 // calls coerced into a miss/false by a failure
	Timeouts    uint64 // calls that hit CallTimeout
	LateReplies uint64 // replies discarded with no caller waiting
}

// Counters snapshots the client-side failure counters. In a healthy run
// every field is zero; flowload surfaces the delta per sweep point and
// -check fails on nonzero Errors.
func (cl *Client) Counters() ClientCounters {
	return ClientCounters{
		Errors:      cl.c.errors.Load(),
		Timeouts:    cl.c.timeouts.Load(),
		LateReplies: cl.c.lateReplies.Load(),
	}
}

// CollectInto publishes the client-side counters under flowwire.client.*.
func (cl *Client) CollectInto(snap *stats.Snapshot) {
	snap.Add("flowwire.client.errors", cl.c.errors.Load())
	snap.Add("flowwire.client.timeouts", cl.c.timeouts.Load())
	snap.Add("flowwire.client.late_replies", cl.c.lateReplies.Load())
}

func (cl *Client) fail(err error) {
	cl.errOnce.Do(func() { cl.err.Store(err) })
}

// Close tears the pool down. In-flight calls fail with ErrClientClosed.
func (cl *Client) Close() error {
	cl.closed.Store(true)
	for _, c := range cl.conns {
		c.nc.Close()
	}
	return nil
}

// readLoop dispatches reply frames to their waiting calls. A reply whose
// reqID matches no waiting call lost the race with its call's timeout (or
// is a server fault): its payload is drained into a loop-local scratch,
// flowwire.client.late_replies counts it, and the connection keeps serving
// — it can never be delivered to a different caller, because the caller's
// pcall was removed from pending under pmu before the caller reclaimed it.
// Any read error fails every pending call on the connection and breaks the
// client.
func (c *cliConn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var discard []byte
	var cause error
	var f Frame
	for {
		plen, err := ReadFrameHeader(br, c.cl.opts.MaxFrame, &f)
		if err != nil {
			cause = err
			break
		}
		c.pmu.Lock()
		pc := c.pending[f.ReqID]
		delete(c.pending, f.ReqID)
		c.pmu.Unlock()
		if pc == nil {
			c.cl.c.lateReplies.Add(1)
			if cap(discard) < plen {
				discard = make([]byte, plen)
			}
			if _, err := io.ReadFull(br, discard[:plen]); err != nil {
				cause = err
				break
			}
			continue
		}
		// The readLoop owns pc from the delete above until the send: the
		// payload lands in pc's reusable buffer with no intermediate copy.
		if cap(pc.buf) < plen {
			pc.buf = make([]byte, plen)
		}
		pc.buf = pc.buf[:plen]
		if _, err := io.ReadFull(br, pc.buf); err != nil {
			// Claimed but undeliverable: the close below tells the caller.
			close(pc.ch)
			cause = err
			break
		}
		f.Payload = pc.buf
		pc.ch <- f
	}
	switch {
	case c.cl.closed.Load():
		cause = ErrClientClosed
	case cause == io.EOF:
		cause = ErrConnClosed
	}
	if cause != ErrClientClosed {
		c.cl.fail(cause)
	}
	c.pmu.Lock()
	c.dead = true
	c.deadErr = cause
	waiting := c.pending
	c.pending = make(map[uint64]*pcall)
	c.pmu.Unlock()
	c.nc.Close()
	for _, pc := range waiting {
		close(pc.ch) // a closed channel signals "no reply; see deadErr"
	}
}

// call sends one request on a pooled connection and waits for its reply.
// On success the returned pcall owns f.Payload's backing buffer: the caller
// must finish parsing the payload and then release the slot with putCall.
// On error the pcall has already been dealt with and nil is returned.
func (cl *Client) call(op Op, payload []byte) (*pcall, Frame, error) {
	if cl.closed.Load() {
		return nil, Frame{}, ErrClientClosed
	}
	if err := cl.Err(); err != nil {
		return nil, Frame{}, err
	}
	c := cl.conns[cl.rr.Add(1)%uint64(len(cl.conns))]

	pc := cl.getCall(cl.opts.CallTimeout)
	c.wmu.Lock()
	c.pmu.Lock()
	if c.dead {
		err := c.deadErr
		c.pmu.Unlock()
		c.wmu.Unlock()
		cl.putCall(pc)
		return nil, Frame{}, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = pc
	c.pmu.Unlock()
	// Encode into the conn-owned scratch under wmu: no per-call buffer.
	c.wbuf = AppendFrameHeader(c.wbuf[:0], op, StatusOK, id, len(payload))
	c.wbuf = append(c.wbuf, payload...)
	err := c.nc.SetWriteDeadline(time.Now().Add(cl.opts.WriteTimeout))
	if err == nil {
		_, err = c.bw.Write(c.wbuf)
		if err == nil {
			err = c.bw.Flush()
		}
		if err == nil {
			// Clear the deadline after a successful write: a stale deadline
			// must not fire under a later, otherwise-healthy write.
			err = c.nc.SetWriteDeadline(time.Time{})
		}
	}
	if err != nil {
		// The bufio writer may hold partial frame bytes; this connection
		// must never write again. Mark it dead before releasing wmu so the
		// next caller fails fast instead of appending to a torn stream.
		c.pmu.Lock()
		if !c.dead {
			c.dead = true
			c.deadErr = err
		}
		c.pmu.Unlock()
		cl.fail(err)
		c.nc.Close() // the read loop fails the registered call
	}
	c.wmu.Unlock()

	select {
	case f, ok := <-pc.ch:
		if !ok {
			// Conn death closed the channel; never recycle a closed-channel
			// pcall — the pool must only hold live slots.
			c.pmu.Lock()
			err := c.deadErr
			c.pmu.Unlock()
			if err == nil {
				err = ErrConnClosed
			}
			return nil, Frame{}, err
		}
		if f.Op != op {
			err := fmt.Errorf("flowwire: reply op %s to a %s request", f.Op, op)
			cl.fail(err)
			cl.putCall(pc)
			return nil, Frame{}, err
		}
		return pc, f, nil
	case <-pc.timer.C:
		cl.c.timeouts.Add(1)
		c.pmu.Lock()
		if _, registered := c.pending[id]; registered {
			// The readLoop never claimed this call: deleting it under pmu
			// guarantees nothing will ever be sent on pc.ch, so the slot is
			// ours to recycle.
			delete(c.pending, id)
			c.pmu.Unlock()
			cl.putCall(pc)
			return nil, Frame{}, ErrCallTimeout
		}
		c.pmu.Unlock()
		// The readLoop claimed the call before the timeout could take it
		// back: a send (or a conn-death close) is committed. Take it and
		// discard — the reply must not leak into the buffered channel, and
		// the slot must not be recycled while the readLoop can still touch
		// it.
		if _, ok := <-pc.ch; ok {
			cl.c.lateReplies.Add(1)
			cl.putCall(pc)
		}
		return nil, Frame{}, ErrCallTimeout
	}
}

// replyErr maps a non-OK reply onto the typed error vocabulary. WRONG_SHARD
// replies carry the server's map epoch in the payload and become a
// *WrongShardError — the redirect the cluster router follows; everything
// else goes through Status.Err.
func replyErr(f *Frame, op Op) error {
	if f.Status == StatusErrWrongShard {
		return parseWrongShard(f.Payload)
	}
	return f.Status.Err(op)
}

// LookupE is Lookup with the error surfaced: a WRONG_SHARD redirect, a
// table-semantics error or a transport failure comes back typed instead of
// being coerced into a miss. The cluster router routes and retries on it;
// plain Reader callers use Lookup.
func (cl *Client) LookupE(key []byte) (uint64, bool, error) {
	if len(key) != cl.hello.KeyLen {
		return 0, false, flowserve.ErrKeyLen
	}
	pc, f, err := cl.call(OpLookup, key)
	if err != nil {
		return 0, false, err
	}
	if err := replyErr(&f, OpLookup); err != nil {
		cl.putCall(pc)
		return 0, false, err
	}
	if len(f.Payload) != 9 {
		cl.putCall(pc)
		err := fmt.Errorf("flowwire: LOOKUP reply payload is %d bytes, want 9", len(f.Payload))
		cl.fail(err)
		return 0, false, err
	}
	value := binary.LittleEndian.Uint64(f.Payload[1:9])
	ok := f.Payload[0] != 0
	cl.putCall(pc)
	return value, ok, nil
}

// Lookup implements flowserve.Reader: a blocking single-key remote lookup
// (the wire LOOKUP op, the paper's LOOKUP_B). Wrong-length keys are misses;
// transport failures are misses too, and are counted in
// flowwire.client.errors.
func (cl *Client) Lookup(key []byte) (uint64, bool) {
	if len(key) != cl.hello.KeyLen {
		return 0, false
	}
	value, ok, err := cl.LookupE(key)
	if err != nil {
		cl.c.errors.Add(1)
		return 0, false
	}
	return value, ok
}

// LookupManyE is LookupMany with the error surfaced. On a typed error reply
// (WRONG_SHARD during a shard-map epoch change, a key-length mismatch) or a
// transport failure, every result is zeroed and the error returned — the
// caller decides whether to re-route (the cluster router) or coerce to
// misses (LookupMany). Wrong-length keys are still answered locally as
// misses without failing the batch.
func (cl *Client) LookupManyE(keys [][]byte, results []flowserve.Result) (int, error) {
	n := len(keys)
	_ = results[:n]
	keyLen := cl.hello.KeyLen
	allValid := true
	for _, k := range keys {
		if len(k) != keyLen {
			allValid = false
			break
		}
	}
	valid := keys
	var validIdx []int // nil on the common all-valid path
	if !allValid {
		valid = make([][]byte, 0, n)
		validIdx = make([]int, 0, n)
		for j, kj := range keys {
			results[j] = flowserve.Result{}
			if len(kj) == keyLen {
				valid = append(valid, kj)
				validIdx = append(validIdx, j)
			}
		}
	}
	if len(valid) == 0 {
		for i := range keys {
			results[i] = flowserve.Result{}
		}
		return 0, nil
	}

	req := getFrameBuf()
	req.b = appendLookupManyReq(req.b[:0], valid, keyLen)
	pc, f, err := cl.call(OpLookupMany, req.b)
	putFrameBuf(req) // call copied the payload onto the wire before returning
	if err == nil {
		err = replyErr(&f, OpLookupMany)
	}
	if err != nil {
		cl.putCall(pc)
		for i := range keys {
			results[i] = flowserve.Result{}
		}
		return 0, err
	}
	var out []flowserve.Result
	if validIdx == nil {
		out = results[:n]
	} else {
		out = make([]flowserve.Result, len(valid))
	}
	count, perr := parseLookupManyReply(f.Payload, out)
	cl.putCall(pc)
	if perr != nil || count != len(valid) {
		err := fmt.Errorf("flowwire: LOOKUP_MANY reply mismatch: %d results for %d keys (%v)", count, len(valid), perr)
		cl.fail(err)
		for i := range keys {
			results[i] = flowserve.Result{}
		}
		return 0, err
	}
	hits := 0
	if validIdx == nil {
		for i := range out {
			if out[i].OK {
				hits++
			}
		}
		return hits, nil
	}
	for vi, r := range out {
		results[validIdx[vi]] = r
		if r.OK {
			hits++
		}
	}
	return hits, nil
}

// LookupMany implements flowserve.Reader: all keys travel in one
// LOOKUP_MANY frame (the paper's batched LOOKUP_NB), with wrong-length keys
// answered locally as misses. On any failure every result is a miss and
// flowwire.client.errors counts the call. The request payload is built in a
// pooled buffer and the reply parsed out of the call slot's reused buffer —
// the steady-state batch path allocates nothing.
func (cl *Client) LookupMany(keys [][]byte, results []flowserve.Result) int {
	hits, err := cl.LookupManyE(keys, results)
	if err != nil {
		cl.c.errors.Add(1)
		return 0
	}
	return hits
}

// mutatePayload packs value+key for INSERT/UPDATE.
func mutatePayload(value uint64, key []byte) []byte {
	p := make([]byte, 0, 8+len(key))
	p = binary.LittleEndian.AppendUint64(p, value)
	return append(p, key...)
}

// Insert implements flowserve.Writer over the wire. Table-semantics
// failures come back as the flowserve errors (ErrKeyExists, ErrTableFull,
// ErrKeyLen); a redirect as *WrongShardError; transport failures as the
// underlying error.
func (cl *Client) Insert(key []byte, value uint64) error {
	if len(key) != cl.hello.KeyLen {
		return flowserve.ErrKeyLen
	}
	pc, f, err := cl.call(OpInsert, mutatePayload(value, key))
	if err != nil {
		return err
	}
	err = replyErr(&f, OpInsert)
	cl.putCall(pc)
	return err
}

// UpdateE is Update with the error surfaced (WRONG_SHARD redirect, transport
// failure) so the cluster router can re-route instead of reporting a miss.
func (cl *Client) UpdateE(key []byte, value uint64) (bool, error) {
	if len(key) != cl.hello.KeyLen {
		return false, flowserve.ErrKeyLen
	}
	pc, f, err := cl.call(OpUpdate, mutatePayload(value, key))
	if err != nil {
		return false, err
	}
	if err := replyErr(&f, OpUpdate); err != nil {
		cl.putCall(pc)
		return false, err
	}
	if len(f.Payload) != 1 {
		cl.putCall(pc)
		err := fmt.Errorf("flowwire: UPDATE reply payload is %d bytes, want 1", len(f.Payload))
		cl.fail(err)
		return false, err
	}
	found := f.Payload[0] != 0
	cl.putCall(pc)
	return found, nil
}

// Update implements flowserve.Writer; false on absent key or failure
// (failures counted in flowwire.client.errors).
func (cl *Client) Update(key []byte, value uint64) bool {
	if len(key) != cl.hello.KeyLen {
		return false
	}
	found, err := cl.UpdateE(key, value)
	if err != nil {
		cl.c.errors.Add(1)
		return false
	}
	return found
}

// DeleteE is Delete with the error surfaced, mirroring UpdateE.
func (cl *Client) DeleteE(key []byte) (bool, error) {
	if len(key) != cl.hello.KeyLen {
		return false, flowserve.ErrKeyLen
	}
	pc, f, err := cl.call(OpDelete, key)
	if err != nil {
		return false, err
	}
	if err := replyErr(&f, OpDelete); err != nil {
		cl.putCall(pc)
		return false, err
	}
	if len(f.Payload) != 1 {
		cl.putCall(pc)
		err := fmt.Errorf("flowwire: DELETE reply payload is %d bytes, want 1", len(f.Payload))
		cl.fail(err)
		return false, err
	}
	found := f.Payload[0] != 0
	cl.putCall(pc)
	return found, nil
}

// Delete implements flowserve.Writer; false on absent key or failure
// (failures counted in flowwire.client.errors).
func (cl *Client) Delete(key []byte) bool {
	if len(key) != cl.hello.KeyLen {
		return false
	}
	found, err := cl.DeleteE(key)
	if err != nil {
		cl.c.errors.Add(1)
		return false
	}
	return found
}

// StatsSnapshot fetches the server's stats as a typed stats.Snapshot —
// counters (flowwire.* and flowserve.* names) plus histograms — via the
// STATS op. This is the primary stats surface: the cluster router merges
// per-node snapshots into its rollup with stats.Snapshot.Merge, the same
// code path CollectInto feeds.
func (cl *Client) StatsSnapshot() (*stats.Snapshot, error) {
	pc, f, err := cl.call(OpStats, nil)
	if err != nil {
		return nil, err
	}
	defer cl.putCall(pc)
	if err := f.Status.Err(OpStats); err != nil {
		return nil, err
	}
	snap := stats.NewSnapshot()
	if err := json.Unmarshal(f.Payload, snap); err != nil {
		return nil, fmt.Errorf("flowwire: STATS payload: %w", err)
	}
	return snap, nil
}

// Stats fetches the server's counter snapshot as a flat name→value map.
//
// Deprecated: use StatsSnapshot, which also carries histograms and merges
// into a stats.Snapshot rollup; this map form is re-expressed on top of it.
func (cl *Client) Stats() (map[string]uint64, error) {
	snap, err := cl.StatsSnapshot()
	if err != nil {
		return nil, err
	}
	counters := make(map[string]uint64, len(snap.Counters))
	for name, v := range snap.Counters {
		counters[name] = v
	}
	return counters, nil
}

// FetchShardMap fetches the node's installed shard map via the SHARD_MAP op.
// A standalone (non-cluster) node reports a nil map at epoch 0.
func (cl *Client) FetchShardMap() (*ShardMap, error) {
	pc, f, err := cl.call(OpShardMap, nil)
	if err != nil {
		return nil, err
	}
	defer cl.putCall(pc)
	if err := f.Status.Err(OpShardMap); err != nil {
		return nil, err
	}
	if len(f.Payload) == 0 {
		return nil, nil
	}
	return ParseShardMap(f.Payload)
}

// PushShardMap installs a shard map on the node via the MAP_UPDATE op. On
// the losing side of a migration the reply gates the handoff: the server
// only replies after the migration queue for the surrendered range has fully
// drained into the gaining node, so a returned nil error IS the zero-loss
// point of the cutover.
func (cl *Client) PushShardMap(m *ShardMap) error {
	req := getFrameBuf()
	req.b = AppendShardMap(req.b[:0], m)
	pc, f, err := cl.call(OpMapUpdate, req.b)
	putFrameBuf(req)
	if err != nil {
		return err
	}
	err = f.Status.Err(OpMapUpdate)
	cl.putCall(pc)
	return err
}

// MigrateStart asks the node (the losing side A) to begin migrating the hash
// range rg to the node at dst: snapshot+stream the range and double-write
// every mutation that lands in it until the cutover map arrives.
func (cl *Client) MigrateStart(rg Range, dst Endpoint) error {
	req := getFrameBuf()
	req.b = appendMigStartReq(req.b[:0], rg, dst)
	pc, f, err := cl.call(OpMigStart, req.b)
	putFrameBuf(req)
	if err != nil {
		return err
	}
	err = f.Status.Err(OpMigStart)
	cl.putCall(pc)
	return err
}

// MigrateStatus fetches the node's migration ledger (snapshot progress and
// the enqueued == sent == acked record counts the coordinator checks).
func (cl *Client) MigrateStatus() (MigInfo, error) {
	pc, f, err := cl.call(OpMigStatus, nil)
	if err != nil {
		return MigInfo{}, err
	}
	defer cl.putCall(pc)
	if err := f.Status.Err(OpMigStatus); err != nil {
		return MigInfo{}, err
	}
	return parseMigInfo(f.Payload)
}

// MigApply streams a batch of migrated records to the gaining node and
// returns how many applied cleanly and how many were benign conflicts
// (snapshot/double-write overlaps). The losing node's migration sender is
// the only caller.
func (cl *Client) MigApply(recs []MigRecord) (applied, conflicts uint32, err error) {
	req := getFrameBuf()
	req.b = appendMigRecords(req.b[:0], recs)
	pc, f, err := cl.call(OpMigApply, req.b)
	putFrameBuf(req)
	if err != nil {
		return 0, 0, err
	}
	if err := f.Status.Err(OpMigApply); err != nil {
		cl.putCall(pc)
		return 0, 0, err
	}
	if len(f.Payload) != 8 {
		cl.putCall(pc)
		return 0, 0, fmt.Errorf("flowwire: MIG_APPLY reply payload is %d bytes, want 8", len(f.Payload))
	}
	applied = binary.LittleEndian.Uint32(f.Payload[0:4])
	conflicts = binary.LittleEndian.Uint32(f.Payload[4:8])
	cl.putCall(pc)
	return applied, conflicts, nil
}
