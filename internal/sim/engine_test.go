package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Cycle
	for _, d := range []Cycle{30, 10, 20, 10, 0} {
		d := d
		e.Schedule(d, func(now Cycle) {
			if now != d {
				t.Errorf("event scheduled for +%d fired at %d", d, now)
			}
			order = append(order, now)
		})
	}
	end := e.Run()
	if end != 30 {
		t.Fatalf("Run ended at %d, want 30", end)
	}
	want := []Cycle{0, 10, 10, 20, 30}
	for i, c := range want {
		if order[i] != c {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(Cycle) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of FIFO order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var fire func(now Cycle)
	fire = func(now Cycle) {
		depth++
		if depth < 100 {
			e.Schedule(1, fire)
		}
	}
	e.Schedule(0, fire)
	end := e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 99 {
		t.Fatalf("end = %d, want 99", end)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Cycle) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(3, func(Cycle) {})
}

func TestEngineNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil event did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Cycle(i), func(Cycle) {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count after Halt = %d, want 3", count)
	}
	// Run again resumes the remaining events.
	e.Run()
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func(Cycle) { fired++ })
	e.Schedule(15, func(Cycle) { fired++ })
	now := e.RunUntil(10)
	if now != 10 {
		t.Fatalf("RunUntil returned %d, want 10", now)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var loop func(Cycle)
	loop = func(Cycle) { e.Schedule(1, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("event limit exceeded but Run did not panic")
		}
	}()
	e.Run()
}

func TestResourceSerialises(t *testing.T) {
	var r Resource
	if got := r.Claim(10, 5); got != 10 {
		t.Fatalf("first claim starts at %d, want 10", got)
	}
	if got := r.Claim(12, 5); got != 15 {
		t.Fatalf("overlapping claim starts at %d, want 15", got)
	}
	if got := r.Claim(100, 5); got != 100 {
		t.Fatalf("idle claim starts at %d, want 100", got)
	}
	if r.FreeAt() != 105 {
		t.Fatalf("FreeAt = %d, want 105", r.FreeAt())
	}
}

func TestTicketAfterAndMaxDone(t *testing.T) {
	tk := Ticket{Issued: 5, Done: 10}
	if tk.Latency() != 5 {
		t.Fatalf("latency = %d, want 5", tk.Latency())
	}
	if got := tk.After(20); got.Done != 20 {
		t.Fatalf("After(20).Done = %d, want 20", got.Done)
	}
	if got := tk.After(3); got.Done != 10 {
		t.Fatalf("After(3).Done = %d, want 10", got.Done)
	}
	max := MaxDone(0, Ticket{Done: 4}, Ticket{Done: 9}, Ticket{Done: 2})
	if max != 9 {
		t.Fatalf("MaxDone = %d, want 9", max)
	}
	if MaxDone(7) != 7 {
		t.Fatalf("MaxDone with no tickets should return default")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded generators diverged")
		}
	}
	c := NewRand(43)
	same := 0
	b = NewRand(42)
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		n := 1 + i%97
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRand(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}
