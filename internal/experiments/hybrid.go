package experiments

import (
	"io"

	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/stats"
)

// HybridRow is one traffic phase's hybrid-controller measurement.
type HybridRow struct {
	Phase           string
	Flows           int
	Lookups         int
	SwLookups       uint64
	HwLookups       uint64
	Scans           uint64
	Switches        uint64
	FinalMode       string
	CyclesPerLookup float64
}

// HybridResult exercises the §4.6 hybrid controller end to end: a
// many-flow phase that must stay on the accelerators, a few-flow phase
// that must settle into software, and a phase shift that must switch and
// switch back. It is an extension: the paper describes the controller but
// shows no dedicated figure for it.
type HybridResult struct {
	Rows  []HybridRow
	Table *metrics.Table
}

// hybridPhases fixes the traffic phases (and their point order).
var hybridPhases = []string{"many-flows", "few-flows", "phase-shift"}

// HybridSweep decomposes the controller study into one point per phase.
func HybridSweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			pts := make([]Point, len(hybridPhases))
			for i, l := range hybridPhases {
				pts[i] = Point{Experiment: "hybrid", Index: i, Label: l}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			snap := pointSnapshot(cfg)
			row := runHybridPoint(hybridPhases[p.Index], pickSize(cfg, 2000, 12000), snap)
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleHybrid(rows).Table.Render(w)
		},
	}
}

// RunHybrid measures the hybrid controller across the three phases.
func RunHybrid(cfg Config) *HybridResult {
	return assembleHybrid(runSerial(cfg, HybridSweep()))
}

func assembleHybrid(rows []any) *HybridResult {
	res := &HybridResult{
		Table: metrics.NewTable("Hybrid controller (§4.6): mode selection across traffic phases",
			"phase", "flows", "lookups", "sw-lookups", "hw-lookups", "scans", "switches", "final-mode", "cyc/lookup"),
	}
	res.Table.SetCaption("paper: below 64 active flows the L1-resident software path wins; above, the accelerators")
	for _, r := range rows {
		row := r.(HybridRow)
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Phase, row.Flows, row.Lookups, row.SwLookups, row.HwLookups,
			row.Scans, row.Switches, row.FinalMode, row.CyclesPerLookup)
	}
	return res
}

// Row fetches a phase's measurement.
func (r *HybridResult) Row(phase string) (HybridRow, bool) {
	for _, row := range r.Rows {
		if row.Phase == phase {
			return row, true
		}
	}
	return HybridRow{}, false
}

// hybridFewFlows is well below the 64-flow software threshold;
// hybridManyFlows is well above it.
const (
	hybridFewFlows  = 8
	hybridManyFlows = 2048
)

func runHybridPoint(phase string, lookups int, snap *stats.Snapshot) HybridRow {
	p := halo.NewPlatform(halo.DefaultPlatformConfig())
	f := fixtureOn(p, 1<<12, 0.70)
	hcfg := halo.DefaultHybridConfig()
	// A shorter scan window than the paper's 100K cycles so every phase
	// closes several windows even at quick scale.
	hcfg.WindowCycles = 20_000
	h := halo.NewHybrid(hcfg, p.Unit)
	th := f.thread

	many := uint64(hybridManyFlows)
	if many > f.fill {
		many = f.fill
	}
	keyAt := func(i int) uint64 {
		switch phase {
		case "many-flows":
			return uint64(i*13) % many
		case "few-flows":
			return uint64(i) % hybridFewFlows
		default: // phase-shift: few flows first, then many
			if i < lookups/2 {
				return uint64(i) % hybridFewFlows
			}
			return uint64(i*13) % many
		}
	}

	start := th.Now
	var kb [testKeyLen]byte
	for i := 0; i < lookups; i++ {
		testKeyInto(keyAt(i), kb[:])
		h.Lookup(th, f.table, kb[:])
	}
	sw, hw := h.Lookups()
	collectInto(snap, p, th, h)

	flows := int(many)
	if phase == "few-flows" {
		flows = hybridFewFlows
	}
	return HybridRow{
		Phase:           phase,
		Flows:           flows,
		Lookups:         lookups,
		SwLookups:       sw,
		HwLookups:       hw,
		Scans:           h.Scans(),
		Switches:        h.Switches(),
		FinalMode:       h.Mode().String(),
		CyclesPerLookup: float64(th.Now-start) / float64(lookups),
	}
}
