package cuckoo

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"halo/internal/mem"
)

func newTable(t testing.TB, cfg Config) *Table {
	t.Helper()
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	tbl, err := Create(space, alloc, cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tbl
}

func key16(i uint64) []byte {
	k := make([]byte, 16)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], i^0xabcdef)
	return k
}

func TestInsertLookupRoundTrip(t *testing.T) {
	tbl := newTable(t, Config{Entries: 1024, KeyLen: 16})
	for i := uint64(0); i < 800; i++ {
		if err := tbl.Insert(key16(i), i*3+1); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 800; i++ {
		v, ok := tbl.Lookup(key16(i))
		if !ok || v != i*3+1 {
			t.Fatalf("Lookup %d = (%d,%v), want (%d,true)", i, v, ok, i*3+1)
		}
	}
	if _, ok := tbl.Lookup(key16(9999)); ok {
		t.Fatal("lookup of absent key succeeded")
	}
	if tbl.Size() != 800 {
		t.Fatalf("Size = %d, want 800", tbl.Size())
	}
}

func TestHighOccupancyInsertion(t *testing.T) {
	// Cuckoo hashing should reach ~95% occupancy (paper §3.3).
	tbl := newTable(t, Config{Entries: 4096, KeyLen: 16})
	inserted := uint64(0)
	for i := uint64(0); i < 4096; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			break
		}
		inserted++
	}
	if float64(inserted)/4096 < 0.93 {
		t.Fatalf("only %d/4096 inserted (%.1f%%); cuckoo displacement too weak",
			inserted, 100*float64(inserted)/4096)
	}
	// Everything inserted is still findable after all the displacement.
	for i := uint64(0); i < inserted; i++ {
		if v, ok := tbl.Lookup(key16(i)); !ok || v != i {
			t.Fatalf("key %d lost after displacements", i)
		}
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	tbl := newTable(t, Config{Entries: 256, KeyLen: 16})
	for i := uint64(0); i < 200; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	for i := uint64(0); i < 200; i += 2 {
		if !tbl.Delete(key16(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tbl.Size() != 100 {
		t.Fatalf("Size after deletes = %d, want 100", tbl.Size())
	}
	for i := uint64(0); i < 200; i++ {
		_, ok := tbl.Lookup(key16(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v, want %v", i, ok, want)
		}
	}
	// Freed slots are reusable.
	for i := uint64(1000); i < 1100; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
}

func TestUpdate(t *testing.T) {
	tbl := newTable(t, Config{Entries: 64, KeyLen: 16})
	if err := tbl.Insert(key16(1), 10); err != nil {
		t.Fatal(err)
	}
	if !tbl.Update(key16(1), 20) {
		t.Fatal("update of present key failed")
	}
	if v, _ := tbl.Lookup(key16(1)); v != 20 {
		t.Fatalf("value after update = %d, want 20", v)
	}
	if tbl.Update(key16(2), 30) {
		t.Fatal("update of absent key succeeded")
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	tbl := newTable(t, Config{Entries: 64, KeyLen: 16})
	if err := tbl.Insert(key16(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(key16(1), 2); err != ErrKeyExists {
		t.Fatalf("duplicate insert err = %v, want ErrKeyExists", err)
	}
}

func TestKeyLenMismatch(t *testing.T) {
	tbl := newTable(t, Config{Entries: 64, KeyLen: 16})
	if err := tbl.Insert([]byte{1, 2, 3}, 1); err != ErrKeyLen {
		t.Fatalf("short key insert err = %v", err)
	}
	if _, ok := tbl.Lookup([]byte{1, 2, 3}); ok {
		t.Fatal("short key lookup succeeded")
	}
}

func TestVersionBumpsOnMovesAndDeletes(t *testing.T) {
	tbl := newTable(t, Config{Entries: 2048, KeyLen: 16})
	v0 := tbl.Version()
	// Fill to high occupancy to force displacement moves.
	for i := uint64(0); i < 1900; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			break
		}
	}
	if tbl.Version() == v0 {
		t.Fatal("no version bumps despite cuckoo moves at high occupancy")
	}
	if tbl.Version()%2 != 0 {
		t.Fatal("version left odd: a 'write in progress' state escaped")
	}
	v1 := tbl.Version()
	tbl.Delete(key16(0))
	if tbl.Version() == v1 {
		t.Fatal("delete did not bump the version")
	}
}

func TestAttachReconstructsState(t *testing.T) {
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0x1000, 1<<30)
	tbl, err := Create(space, alloc, Config{Entries: 512, KeyLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 400; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Attach(space, tbl.Base())
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if re.Size() != 400 {
		t.Fatalf("attached size = %d, want 400", re.Size())
	}
	for i := uint64(0); i < 400; i++ {
		if v, ok := re.Lookup(key16(i)); !ok || v != i {
			t.Fatalf("attached lookup %d failed", i)
		}
	}
	// Inserting through the attached handle avoids used slots.
	for i := uint64(1000); i < 1100; i++ {
		if err := re.Insert(key16(i), i); err != nil {
			t.Fatalf("attached insert: %v", err)
		}
	}
	for i := uint64(0); i < 400; i++ {
		if v, ok := re.Lookup(key16(i)); !ok || v != i {
			t.Fatalf("old key %d corrupted by attached inserts", i)
		}
	}
}

func TestAttachRejectsGarbage(t *testing.T) {
	space := mem.NewMemory()
	if _, err := Attach(space, 0x5000); err != ErrNotHaloible {
		t.Fatalf("attach to garbage err = %v", err)
	}
}

func TestSFHLowUtilisation(t *testing.T) {
	// The paper observes SFH tables waste space: most buckets hold only a
	// few entries and insertion fails long before cuckoo would.
	sfh := newTable(t, Config{Entries: 4096, KeyLen: 16, SFH: true})
	ck := newTable(t, Config{Entries: 4096, KeyLen: 16})
	if sfh.BucketCount() <= ck.BucketCount() {
		t.Fatal("SFH table should allocate more buckets for the same capacity")
	}
	for i := uint64(0); i < 4096; i++ {
		_ = sfh.Insert(key16(i), i)
		_ = ck.Insert(key16(i), i)
	}
	// The over-allocated SFH installs (nearly) everything, but its cache
	// footprint is far larger and its buckets mostly near-empty — that is
	// the paper's §3.3 observation (~20% utilisation, more LLC misses).
	if Footprint(Config{Entries: 4096, KeyLen: 16, SFH: true}) <
		2*Footprint(Config{Entries: 4096, KeyLen: 16}) {
		t.Fatal("SFH footprint should dwarf the cuckoo footprint")
	}
	hist := sfh.BucketOccupancy()
	sparse := hist[0] + hist[1] + hist[2]
	if frac := float64(sparse) / float64(sfh.BucketCount()); frac < 0.9 {
		t.Fatalf("only %.0f%% of SFH buckets hold <=2 entries; expected near all", 100*frac)
	}
	util := float64(sfh.Size()) / (float64(sfh.BucketCount()) * EntriesPerBucket)
	if util > 0.35 {
		t.Fatalf("SFH utilisation %.2f; paper observes ~0.2", util)
	}
	// And everything installed is still found.
	found := uint64(0)
	for i := uint64(0); i < 4096; i++ {
		if _, ok := sfh.Lookup(key16(i)); ok {
			found++
		}
	}
	if found != sfh.Size() {
		t.Fatalf("SFH lookup found %d, size says %d", found, sfh.Size())
	}
}

func TestBucketOccupancyHistogram(t *testing.T) {
	tbl := newTable(t, Config{Entries: 1024, KeyLen: 16})
	for i := uint64(0); i < 900; i++ {
		if err := tbl.Insert(key16(i), i); err != nil {
			t.Fatal(err)
		}
	}
	hist := tbl.BucketOccupancy()
	var total, buckets uint64
	for n, c := range hist {
		total += uint64(n) * c
		buckets += c
	}
	if total != 900 {
		t.Fatalf("histogram sums to %d entries, want 900", total)
	}
	if buckets != tbl.BucketCount() {
		t.Fatalf("histogram covers %d buckets, want %d", buckets, tbl.BucketCount())
	}
}

func TestFootprintMatchesAllocator(t *testing.T) {
	cfg := Config{Entries: 1 << 12, KeyLen: 24}
	space := mem.NewMemory()
	base := mem.Addr(0x40)
	alloc := mem.NewAllocator(base, 1<<30)
	if _, err := Create(space, alloc, cfg); err != nil {
		t.Fatal(err)
	}
	if used := alloc.Used(base); used > Footprint(cfg)+mem.LineSize {
		t.Fatalf("allocator used %d, Footprint says %d", used, Footprint(cfg))
	}
}

func TestPropertyModelEquivalence(t *testing.T) {
	// The table must behave exactly like a map under a random op sequence.
	type op struct {
		Kind  uint8
		Key   uint16
		Value uint64
	}
	check := func(ops []op) bool {
		tbl := newTable(t, Config{Entries: 256, KeyLen: 16})
		model := map[uint16]uint64{}
		for _, o := range ops {
			k := key16(uint64(o.Key % 400))
			mk := o.Key % 400
			switch o.Kind % 3 {
			case 0: // insert
				err := tbl.Insert(k, o.Value)
				_, exists := model[mk]
				switch {
				case exists && err != ErrKeyExists:
					return false
				case !exists && err == nil:
					model[mk] = o.Value
				case !exists && err != ErrTableFull:
					return false
				}
			case 1: // delete
				got := tbl.Delete(k)
				_, exists := model[mk]
				if got != exists {
					return false
				}
				delete(model, mk)
			case 2: // lookup
				v, ok := tbl.Lookup(k)
				want, exists := model[mk]
				if ok != exists || (ok && v != want) {
					return false
				}
			}
		}
		// Full sweep at the end.
		for mk, want := range model {
			if v, ok := tbl.Lookup(key16(uint64(mk))); !ok || v != want {
				return false
			}
		}
		return uint64(len(model)) == tbl.Size()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVariousKeyLengths(t *testing.T) {
	for _, kl := range []int{4, 8, 13, 16, 24, 40, 64} {
		kl := kl
		t.Run(fmt.Sprintf("keylen%d", kl), func(t *testing.T) {
			tbl := newTable(t, Config{Entries: 128, KeyLen: kl})
			for i := 0; i < 100; i++ {
				k := make([]byte, kl)
				for j := range k {
					k[j] = byte(i + j*7)
				}
				if err := tbl.Insert(k, uint64(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				if v, ok := tbl.Lookup(k); !ok || v != uint64(i) {
					t.Fatalf("lookup %d failed", i)
				}
			}
		})
	}
}

func TestCreateRejectsBadConfig(t *testing.T) {
	space := mem.NewMemory()
	alloc := mem.NewAllocator(0, 1<<30)
	if _, err := Create(space, alloc, Config{Entries: 10, KeyLen: 0}); err == nil {
		t.Fatal("zero key length accepted")
	}
	if _, err := Create(space, alloc, Config{Entries: 10, KeyLen: 65}); err == nil {
		t.Fatal("oversized key length accepted")
	}
	if _, err := Create(space, alloc, Config{Entries: 0, KeyLen: 8}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestIterateVisitsEverythingOnce(t *testing.T) {
	tbl := newTable(t, Config{Entries: 512, KeyLen: 16})
	want := map[string]uint64{}
	for i := uint64(0); i < 400; i++ {
		if err := tbl.Insert(key16(i), i*9); err != nil {
			t.Fatal(err)
		}
		want[string(key16(i))] = i * 9
	}
	got := map[string]uint64{}
	tbl.Iterate(func(key []byte, value uint64) bool {
		if _, dup := got[string(key)]; dup {
			t.Fatalf("key visited twice")
		}
		got[string(key)] = value
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("value mismatch for %x", k)
		}
	}
	// Early termination.
	n := 0
	tbl.Iterate(func([]byte, uint64) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}
