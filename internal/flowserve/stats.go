package flowserve

import "halo/internal/stats"

// TableStats aggregates the per-shard operation counters. Reader-side
// counters (Lookups, Hits, Retries, LockFallbacks) are updated with atomics
// on the serving path, so a snapshot taken under load is a consistent-enough
// monotonic view, exact when quiescent.
type TableStats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Retries       uint64 // seqlock revalidation failures (discarded probes)
	LockFallbacks uint64 // optimistic attempts exhausted → locked probe
	Inserts       uint64
	InsertExists  uint64
	InsertFull    uint64
	Updates       uint64
	Deletes       uint64
	Displacements uint64
	BatchCalls    uint64 // per-shard groups served by LookupMany
	BatchKeys     uint64
}

// Stats sums the counters across shards.
func (t *Table) Stats() TableStats {
	var s TableStats
	for _, sh := range t.shards {
		s.Lookups += sh.c.lookups.Load()
		s.Hits += sh.c.hits.Load()
		s.Retries += sh.c.retries.Load()
		s.LockFallbacks += sh.c.fallbacks.Load()
		s.Inserts += sh.c.inserts.Load()
		s.InsertExists += sh.c.insertExists.Load()
		s.InsertFull += sh.c.insertFull.Load()
		s.Updates += sh.c.updates.Load()
		s.Deletes += sh.c.deletes.Load()
		s.Displacements += sh.c.displacements.Load()
		s.BatchCalls += sh.c.batches.Load()
		s.BatchKeys += sh.c.batchKeys.Load()
	}
	s.Misses = s.Lookups - s.Hits
	return s
}

// CollectInto publishes the table's counters into a snapshot under the
// flowserve.* names, following the repo-wide CollectInto convention.
func (t *Table) CollectInto(snap *stats.Snapshot) {
	s := t.Stats()
	snap.Add("flowserve.shards", uint64(len(t.shards)))
	snap.Add("flowserve.size", t.Size())
	snap.Add("flowserve.lookups", s.Lookups)
	snap.Add("flowserve.hits", s.Hits)
	snap.Add("flowserve.misses", s.Misses)
	snap.Add("flowserve.lookup.retries", s.Retries)
	snap.Add("flowserve.lookup.lock_fallbacks", s.LockFallbacks)
	snap.Add("flowserve.inserts", s.Inserts)
	snap.Add("flowserve.insert.exists", s.InsertExists)
	snap.Add("flowserve.insert.full", s.InsertFull)
	snap.Add("flowserve.updates", s.Updates)
	snap.Add("flowserve.deletes", s.Deletes)
	snap.Add("flowserve.displacements", s.Displacements)
	snap.Add("flowserve.batch.calls", s.BatchCalls)
	snap.Add("flowserve.batch.keys", s.BatchKeys)
}
