// Package vswitch models an OVS-style software virtual switch datapath:
// packet IO (descriptor ring + DDIO packet buffers), header pre-processing,
// the EMC, and the MegaFlow tuple-space layer, with the per-stage cycle
// breakdown of paper Fig. 3.
package vswitch

import (
	"errors"
	"fmt"

	"halo/internal/classify"
	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/packet"
	"halo/internal/stats"
)

// Stage labels the datapath components of the Fig. 3 breakdown.
type Stage int

// Datapath stages.
const (
	StagePacketIO Stage = iota
	StagePreProc
	StageEMC
	StageMegaFlow
	StageOpenFlow
	StageOther
	stageCount
)

func (s Stage) String() string {
	switch s {
	case StagePacketIO:
		return "packet-io"
	case StagePreProc:
		return "pre-processing"
	case StageEMC:
		return "emc-lookup"
	case StageMegaFlow:
		return "megaflow-lookup"
	case StageOpenFlow:
		return "openflow-lookup"
	case StageOther:
		return "other"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Breakdown accumulates cycles per stage.
type Breakdown [stageCount]uint64

// Total sums all stages.
func (b Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// ClassificationShare returns the fraction of cycles spent in flow
// classification (EMC + MegaFlow + OpenFlow), the paper's headline §3.2
// metric.
func (b Breakdown) ClassificationShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b[StageEMC]+b[StageMegaFlow]+b[StageOpenFlow]) / float64(t)
}

// Engine selects the classification implementation.
type Engine int

// Engines.
const (
	// EngineSoftware is the DPDK-optimized software baseline.
	EngineSoftware Engine = iota
	// EngineHalo offloads the EMC to blocking accelerator lookups and the
	// MegaFlow search to non-blocking batches.
	EngineHalo
	// EngineHybrid is EngineHalo governed by the linear-counting flow
	// registers: when the active flow estimate drops below the paper's
	// 64-flow threshold the EMC lookup runs in software (paper §4.6).
	EngineHybrid
)

// Config sizes the switch.
type Config struct {
	Engine          Engine
	EMCEntries      uint64
	TupleEntries    uint64
	PacketBuffers   int
	EMCInsertProb   int // learn 1-in-N EMC misses (OVS default: 100)
	SoftwareLookups cuckoo.LookupOptions
	// OpenFlow enables the third classification layer (paper Fig. 2a):
	// rules install there, the MegaFlow layer starts empty and learns
	// megaflows from OpenFlow results. The paper's analysis skips this
	// layer because it is "seldom accessed in practice" — exactly the
	// steady state the learning produces.
	OpenFlow bool
}

// DefaultConfig mirrors OVS/DPDK defaults.
func DefaultConfig() Config {
	return Config{
		Engine:       EngineSoftware,
		EMCEntries:   classify.DefaultEMCEntries,
		TupleEntries: 1024,
		// DPDK mempools recycle last-freed-first, so the hot buffer set is
		// about one RX burst, not the whole pool.
		PacketBuffers:   64,
		EMCInsertProb:   100,
		SoftwareLookups: cuckoo.DefaultLookupOptions(),
	}
}

// The EMC keys on the raw header window (packet.HeaderKeyOff..+HeaderKeyLen),
// the way RSS-style header hashing does, so the HALO lookup's key address
// points straight into the DDIO-delivered packet buffer.
const (
	hdrKeyOff = packet.HeaderKeyOff
	hdrKeyLen = packet.HeaderKeyLen
)

// Switch is one datapath instance bound to a platform.
type Switch struct {
	cfg    Config
	p      *halo.Platform
	EMC    *classify.EMC
	Mega   *classify.TupleSpace
	Open   *classify.TupleSpace // nil unless cfg.OpenFlow
	hybrid *halo.Hybrid

	bufBase  mem.Addr
	descBase mem.Addr
	nextBuf  int
	pktCount uint64

	breakdown  Breakdown
	packets    uint64
	megaHits   uint64
	megaMisses uint64
	openHits   uint64

	// hdrKeyBuf is the per-packet header-key scratch; every consumer of the
	// key (EMC/hybrid/MegaFlow lookups, LearnRaw) copies what it retains, so
	// one buffer per switch is safe.
	hdrKeyBuf [hdrKeyLen]byte
}

// New builds a switch on a platform. The MegaFlow layer uses first-match
// semantics, as OVS's does.
func New(p *halo.Platform, cfg Config) (*Switch, error) {
	if cfg.PacketBuffers <= 0 {
		return nil, errors.New("vswitch: need at least one packet buffer")
	}
	emc, err := classify.NewEMCKeyLen(p.Space, p.Alloc, cfg.EMCEntries, hdrKeyLen)
	if err != nil {
		return nil, err
	}
	sw := &Switch{
		cfg:      cfg,
		p:        p,
		EMC:      emc,
		Mega:     classify.NewTupleSpace(p.Space, p.Alloc, classify.FirstMatch, cfg.TupleEntries),
		bufBase:  p.Alloc.AllocLines(uint64(cfg.PacketBuffers)),
		descBase: p.Alloc.AllocLines(uint64(cfg.PacketBuffers+3) / 4),
	}
	if cfg.Engine == EngineHybrid {
		sw.hybrid = halo.NewHybrid(halo.DefaultHybridConfig(), p.Unit)
	}
	if cfg.OpenFlow {
		sw.Open = classify.NewTupleSpace(p.Space, p.Alloc, classify.HighestPriority, cfg.TupleEntries)
	}
	return sw, nil
}

// HybridMode reports the hybrid controller's current mode; the second value
// is false for non-hybrid engines.
func (sw *Switch) HybridMode() (halo.Mode, bool) {
	if sw.hybrid == nil {
		return 0, false
	}
	return sw.hybrid.Mode(), true
}

// Hybrid returns the hybrid controller, or nil for non-hybrid engines.
func (sw *Switch) Hybrid() *halo.Hybrid { return sw.hybrid }

// CollectInto gathers the switch's counters into a snapshot: per-stage
// cycles, MegaFlow/OpenFlow outcomes, the classification tables' operation
// counts, and — for the hybrid engine — the controller's counters.
func (sw *Switch) CollectInto(s *stats.Snapshot) {
	s.Add("vswitch.packets", sw.packets)
	for st := StagePacketIO; st <= StageOther; st++ {
		s.Add("vswitch.cycles."+st.String(), sw.breakdown[st])
	}
	s.Add("vswitch.mega.hits", sw.megaHits)
	s.Add("vswitch.mega.misses", sw.megaMisses)
	s.Add("vswitch.openflow.hits", sw.openHits)
	sw.EMC.Table().Stats().CollectInto(s)
	for _, tp := range sw.Mega.Tuples() {
		tp.Table.Stats().CollectInto(s)
	}
	if sw.Open != nil {
		for _, tp := range sw.Open.Tuples() {
			tp.Table.Stats().CollectInto(s)
		}
	}
	if sw.hybrid != nil {
		sw.hybrid.CollectInto(s)
	}
}

// Breakdown returns the accumulated per-stage cycles.
func (sw *Switch) Breakdown() Breakdown { return sw.breakdown }

// Packets returns the number processed.
func (sw *Switch) Packets() uint64 { return sw.packets }

// MegaStats returns MegaFlow-layer hit/miss counts.
func (sw *Switch) MegaStats() (hits, misses uint64) { return sw.megaHits, sw.megaMisses }

// OpenFlowHits reports slow-path classifications.
func (sw *Switch) OpenFlowHits() uint64 { return sw.openHits }

// CyclesPerPacket returns the average packet cost so far.
func (sw *Switch) CyclesPerPacket() float64 {
	if sw.packets == 0 {
		return 0
	}
	return float64(sw.breakdown.Total()) / float64(sw.packets)
}

// ResetStats clears the breakdown (e.g. after warm-up).
func (sw *Switch) ResetStats() {
	sw.breakdown = Breakdown{}
	sw.packets = 0
	sw.megaHits = 0
	sw.megaMisses = 0
	sw.openHits = 0
}

// deliver models the NIC DMA: the packet's wire bytes land in the next ring
// buffer via DDIO.
func (sw *Switch) deliver(pkt *packet.Packet) (bufAddr, descAddr mem.Addr) {
	i := sw.nextBuf
	sw.nextBuf = (sw.nextBuf + 1) % sw.cfg.PacketBuffers
	bufAddr = sw.bufBase + mem.Addr(i)*mem.LineSize
	descAddr = sw.descBase + mem.Addr(i/4)*mem.LineSize

	var wire [mem.LineSize]byte
	if err := pkt.Marshal(wire[:]); err != nil {
		panic("vswitch: marshalling generated packet: " + err.Error())
	}
	sw.p.Space.WriteAt(bufAddr, wire[:])
	sw.p.Hier.DMAWrite(bufAddr)
	sw.p.Hier.DMAWrite(descAddr)
	return bufAddr, descAddr
}

// ProcessPacket runs one packet through the datapath on the given thread
// and returns its classification result.
func (sw *Switch) ProcessPacket(th *cpu.Thread, pkt *packet.Packet) (classify.Match, bool) {
	sw.packets++
	start := th.Now
	bufAddr, descAddr := sw.deliver(pkt)

	// --- Packet IO: descriptor poll, buffer fetch, ring bookkeeping.
	t0 := th.Now
	th.Load(descAddr) // RX descriptor (DDIO-fresh: LLC hit)
	th.Load(bufAddr)  // packet header line
	th.Other(30)
	th.LocalLoad(16)
	th.LocalStore(14)
	th.ALU(8)
	sw.breakdown[StagePacketIO] += uint64(th.Now - t0)

	// --- Pre-processing: parse headers, build the miniflow key.
	t0 = th.Now
	th.LocalLoad(18) // header fields (line already in L1)
	th.ALU(46)       // field extraction, byte swaps, key packing
	th.LocalStore(8)
	th.Other(20)
	key := pkt.Key()
	sw.breakdown[StagePreProc] += uint64(th.Now - t0)

	// --- EMC lookup.
	t0 = th.Now
	var m classify.Match
	var ok bool
	hdrKey := sw.hdrKeyBuf[:]
	sw.p.Space.ReadAt(bufAddr+hdrKeyOff, hdrKey)
	switch sw.cfg.Engine {
	case EngineHalo:
		m, ok = sw.EMC.LookupHaloBAt(th, sw.p.Unit, bufAddr+hdrKeyOff)
	case EngineHybrid:
		var v uint64
		v, ok = sw.hybrid.LookupAt(th, sw.EMC.Table(), hdrKey, bufAddr+hdrKeyOff)
		if ok {
			m = classify.DecodeRuleValue(v)
		}
	default:
		m, ok = sw.EMC.LookupTimedRaw(th, hdrKey, sw.cfg.SoftwareLookups)
	}
	sw.breakdown[StageEMC] += uint64(th.Now - t0)

	// --- MegaFlow tuple space search on EMC miss.
	if !ok {
		t0 = th.Now
		switch sw.cfg.Engine {
		case EngineHalo, EngineHybrid:
			m, ok = sw.Mega.ClassifyHaloNB(th, sw.p.Unit, key)
		default:
			m, ok = sw.Mega.ClassifyTimed(th, key, sw.cfg.SoftwareLookups)
		}
		if ok {
			sw.megaHits++
			// Probabilistic EMC insertion (OVS: 1 in EMCInsertProb).
			sw.pktCount++
			if sw.cfg.EMCInsertProb <= 1 || sw.pktCount%uint64(sw.cfg.EMCInsertProb) == 0 {
				sw.learnEMC(th, hdrKey, m)
			}
		} else {
			sw.megaMisses++
		}
		sw.breakdown[StageMegaFlow] += uint64(th.Now - t0)

		// --- OpenFlow slow path on MegaFlow miss: search every tuple,
		// highest priority wins, then install the winning rule as a
		// megaflow so later packets short-circuit (the upcall path).
		if !ok && sw.Open != nil {
			t0 = th.Now
			m, ok = sw.Open.ClassifyTimed(th, key, sw.cfg.SoftwareLookups)
			if ok {
				sw.openHits++
				if mask, pattern, found := sw.Open.RuleSource(key, m); found {
					if err := sw.Mega.InsertRule(mask, pattern, m); err == nil {
						th.Other(40) // upcall + megaflow installation work
						th.LocalStore(12)
					}
				}
				sw.learnEMC(th, hdrKey, m)
			}
			sw.breakdown[StageOpenFlow] += uint64(th.Now - t0)
		}
	}

	// --- Other: action execution, stats, TX batching.
	t0 = th.Now
	th.Other(42)
	th.LocalLoad(18)
	th.LocalStore(16)
	th.ALU(12)
	th.Store(descAddr) // TX descriptor writeback
	sw.breakdown[StageOther] += uint64(th.Now - t0)

	th.Record("lat.packet", th.Now-start)
	return m, ok
}

// learnEMC inserts a resolved flow into the EMC, charging the thread.
func (sw *Switch) learnEMC(th *cpu.Thread, hdrKey []byte, m classify.Match) {
	// The insert itself is charged as a timed insert against the EMC
	// table; eviction management is the functional layer's concern.
	_ = th
	sw.EMC.LearnRaw(hdrKey, m)
	th.Other(20)
	th.LocalStore(6)
	th.Store(sw.EMC.Table().Base()) // version/metadata touch
}

// InstallRules loads a rule set into the MegaFlow layer, or — when the
// OpenFlow layer is enabled — into it, leaving the MegaFlow layer to learn.
func (sw *Switch) InstallRules(rules []RuleInstaller) error {
	target := sw.Mega
	if sw.Open != nil {
		target = sw.Open
	}
	for _, r := range rules {
		if err := r.Install(target); err != nil {
			return err
		}
	}
	return nil
}

// RuleInstaller abstracts rule sources (trafficgen workloads implement it
// via adapter functions to avoid an import cycle).
type RuleInstaller interface {
	Install(ts *classify.TupleSpace) error
}

// Warm pre-loads the switch's tables into the LLC.
func (sw *Switch) Warm() {
	sw.p.WarmTable(sw.EMC.Table())
	for _, tp := range sw.Mega.Tuples() {
		sw.p.WarmTable(tp.Table)
	}
	if sw.Open != nil {
		for _, tp := range sw.Open.Tuples() {
			sw.p.WarmTable(tp.Table)
		}
	}
}
