package flowserve

import "halo/internal/stats"

// TableStats aggregates the per-shard operation counters. Reader-side
// counters (Lookups, Hits, Retries, LockFallbacks) are updated with atomics
// on the serving path, so a snapshot taken under load is a consistent-enough
// monotonic view, exact when quiescent.
type TableStats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	BadLenLookups uint64 // wrong-length keys: table-level, never charged to a shard
	Retries       uint64 // seqlock revalidation failures (discarded probes)
	LockFallbacks uint64 // optimistic attempts exhausted → locked probe
	Inserts       uint64
	InsertExists  uint64
	InsertFull    uint64
	Updates       uint64
	Deletes       uint64
	Displacements uint64
	BatchCalls    uint64 // per-shard groups served by LookupMany
	BatchKeys     uint64

	Grows           uint64 // shard resizes started (one per doubling)
	ResizeSteps     uint64 // bounded migration steps executed
	MigratedBuckets uint64
	MigratedKeys    uint64
	ResizeStalls    uint64 // migration steps that found the new region full
	ResizingShards  uint64 // shards with a migration in flight right now
}

// Stats sums the counters across shards.
func (t *Table) Stats() TableStats {
	var s TableStats
	s.BadLenLookups = t.badLen.Load()
	for _, sh := range t.shards {
		s.Lookups += sh.c.lookups.Load()
		s.Hits += sh.c.hits.Load()
		s.Retries += sh.c.retries.Load()
		s.LockFallbacks += sh.c.fallbacks.Load()
		s.Inserts += sh.c.inserts.Load()
		s.InsertExists += sh.c.insertExists.Load()
		s.InsertFull += sh.c.insertFull.Load()
		s.Updates += sh.c.updates.Load()
		s.Deletes += sh.c.deletes.Load()
		s.Displacements += sh.c.displacements.Load()
		s.BatchCalls += sh.c.batches.Load()
		s.BatchKeys += sh.c.batchKeys.Load()
		s.Grows += sh.c.grows.Load()
		s.ResizeSteps += sh.c.resizeSteps.Load()
		s.MigratedBuckets += sh.c.migratedBuckets.Load()
		s.MigratedKeys += sh.c.migratedKeys.Load()
		s.ResizeStalls += sh.c.resizeStalls.Load()
		if sh.regions.Load().old != nil {
			s.ResizingShards++
		}
	}
	s.Misses = s.Lookups - s.Hits
	return s
}

// ResizePauses returns a merged copy of the per-shard migration-step pause
// histograms (ns per bounded step). Taking each shard's writer lock briefly
// is what makes the merge safe against an in-flight step.
func (t *Table) ResizePauses() *stats.Histogram {
	h := stats.NewHistogramRes(stats.HighResSubBits)
	for _, sh := range t.shards {
		sh.mu.Lock()
		h.Merge(sh.pauseHist)
		sh.mu.Unlock()
	}
	return h
}

// CollectInto publishes the table's counters into a snapshot under the
// flowserve.* names, following the repo-wide CollectInto convention. The
// resize pause histogram is published both as a snapshot histogram
// (flowserve.resize.pause_ns) and as flattened quantile gauges, which is
// what crosses the flowwire STATS frame (counters-only JSON).
func (t *Table) CollectInto(snap *stats.Snapshot) {
	s := t.Stats()
	snap.Add("flowserve.shards", uint64(len(t.shards)))
	snap.Add("flowserve.size", t.Size())
	snap.Add("flowserve.capacity", t.Capacity())
	snap.Add("flowserve.lookups", s.Lookups)
	snap.Add("flowserve.hits", s.Hits)
	snap.Add("flowserve.misses", s.Misses)
	snap.Add("flowserve.lookup.badlen", s.BadLenLookups)
	snap.Add("flowserve.lookup.retries", s.Retries)
	snap.Add("flowserve.lookup.lock_fallbacks", s.LockFallbacks)
	snap.Add("flowserve.inserts", s.Inserts)
	snap.Add("flowserve.insert.exists", s.InsertExists)
	snap.Add("flowserve.insert.full", s.InsertFull)
	snap.Add("flowserve.updates", s.Updates)
	snap.Add("flowserve.deletes", s.Deletes)
	snap.Add("flowserve.displacements", s.Displacements)
	snap.Add("flowserve.batch.calls", s.BatchCalls)
	snap.Add("flowserve.batch.keys", s.BatchKeys)
	snap.Add("flowserve.grows", s.Grows)
	snap.Add("flowserve.resize.steps", s.ResizeSteps)
	snap.Add("flowserve.resize.migrated_buckets", s.MigratedBuckets)
	snap.Add("flowserve.resize.migrated_keys", s.MigratedKeys)
	snap.Add("flowserve.resize.stalls", s.ResizeStalls)
	snap.Add("flowserve.resize.active", s.ResizingShards)
	pauses := t.ResizePauses()
	snap.Add("flowserve.resize.pause_p50_ns", pauses.Quantile(0.50))
	snap.Add("flowserve.resize.pause_p99_ns", pauses.Quantile(0.99))
	snap.Add("flowserve.resize.pause_max_ns", pauses.Quantile(1.0))
	snap.MergeHist("flowserve.resize.pause_ns", pauses)
}
