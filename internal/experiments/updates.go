package experiments

import (
	"fmt"
	"io"

	"halo/internal/cuckoo"
	"halo/internal/metrics"
	"halo/internal/sim"
	"halo/internal/stats"
	"halo/internal/tcam"
)

// UpdatePoint is one (solution, table size) update-cost measurement.
type UpdatePoint struct {
	Solution       string
	Entries        int
	CyclesPerOp    float64
	UpdatesPerMsec float64
}

// UpdatesResult quantifies the paper's §1 motivation for rejecting TCAMs:
// their updates are "expensive and inflexible" because priority order is
// physical — an insert shifts every lower-priority row — while the cuckoo
// hash updates in near-constant time. It is an extension: the paper states
// the claim with citations rather than a figure.
type UpdatesResult struct {
	Points []UpdatePoint
	Table  *metrics.Table
}

// updatesCell is one (solution, table size) coordinate.
type updatesCell struct {
	solution string
	size     int
}

func updatesCells(cfg Config) []updatesCell {
	sizes := []int{1_000, 10_000, 100_000}
	if cfg.Quick {
		sizes = []int{1_000, 10_000}
	}
	var cells []updatesCell
	for _, size := range sizes {
		cells = append(cells, updatesCell{"cuckoo", size}, updatesCell{"tcam", size})
	}
	return cells
}

// UpdatesSweep decomposes the update-cost study into one point per
// (solution, table size).
func UpdatesSweep() Sweep {
	return Sweep{
		Points: func(cfg Config) []Point {
			cells := updatesCells(cfg)
			pts := make([]Point, len(cells))
			for i, c := range cells {
				pts[i] = Point{Experiment: "updates", Index: i,
					Label: fmt.Sprintf("%s/%d-entries", c.solution, c.size)}
			}
			return pts
		},
		RunPoint: func(cfg Config, p Point) any {
			c := updatesCells(cfg)[p.Index]
			ops := pickSize(cfg, 400, 2000)
			snap := pointSnapshot(cfg)
			var row any
			if c.solution == "cuckoo" {
				row = runCuckooUpdates(c.size, ops, snap)
			} else {
				row = runTCAMUpdates(c.size, ops, cfg.Seed, snap)
			}
			recordSnap(cfg, p, snap)
			return row
		},
		Render: func(cfg Config, rows []any, w io.Writer) {
			assembleUpdates(cfg, rows).Table.Render(w)
		},
	}
}

// RunUpdates measures rule-update cost (alternating insert/delete at random
// priority positions) for the software cuckoo table and a TCAM.
func RunUpdates(cfg Config) *UpdatesResult {
	return assembleUpdates(cfg, runSerial(cfg, UpdatesSweep()))
}

func assembleUpdates(cfg Config, rows []any) *UpdatesResult {
	res := &UpdatesResult{
		Table: metrics.NewTable("Updates (extension): rule-update cost, cuckoo vs TCAM",
			"solution", "entries", "cycles/update", "updates/ms @2.1GHz"),
	}
	res.Table.SetCaption("paper §1: TCAM updates are expensive (priority shifting); cuckoo is near-constant")

	for i, cell := range updatesCells(cfg) {
		c := rows[i].(float64)
		res.Points = append(res.Points, UpdatePoint{
			Solution: cell.solution, Entries: cell.size, CyclesPerOp: c,
			UpdatesPerMsec: ClockGHz * 1e6 / c,
		})
		res.Table.AddRow(cell.solution, cell.size, c, ClockGHz*1e6/c)
	}
	return res
}

// Point fetches a measurement.
func (r *UpdatesResult) Point(solution string, entries int) (UpdatePoint, bool) {
	for _, pt := range r.Points {
		if pt.Solution == solution && pt.Entries == entries {
			return pt, true
		}
	}
	return UpdatePoint{}, false
}

func runCuckooUpdates(size, ops int, snap *stats.Snapshot) float64 {
	f := newLookupFixture(nextPow2(uint64(size)), 0.7)
	th := f.thread
	seq := f.fill
	start := th.Now
	var ib, db [testKeyLen]byte
	for i := 0; i < ops/2; i++ {
		testKeyInto(seq, ib[:])
		_ = f.table.TimedInsert(th, ib[:], seq)
		testKeyInto(uint64(i*13)%f.fill, db[:])
		f.table.TimedDelete(th, db[:])
		seq++
	}
	collectInto(snap, f.p, th)
	return float64(th.Now-start) / float64(ops)
}

func runTCAMUpdates(size, ops int, seed uint64, snap *stats.Snapshot) float64 {
	dev := tcam.New(tcam.DefaultConfig(tcam.ClassicTCAM, size+ops, 16))
	care := make([]byte, 16)
	for i := range care {
		care[i] = 0xFF
	}
	var kb [testKeyLen]byte
	for i := 0; i < size; i++ {
		testKeyInto(uint64(i), kb[:])
		if err := dev.InsertExact(kb[:], uint64(i)); err != nil {
			panic(err)
		}
	}
	f := newLookupFixture(8, 1) // a thread on a plain platform
	th := f.thread
	rng := sim.NewRand(seed ^ 0x0bda7e5)
	seq := uint64(size)
	start := th.Now
	var vb [testKeyLen]byte
	for i := 0; i < ops/2; i++ {
		// Rule updates land at random priority positions.
		pos := rng.Intn(dev.Len() + 1)
		testKeyInto(seq, kb[:])
		if err := dev.InsertTimed(th, pos, kb[:], care, seq); err != nil {
			panic(err)
		}
		testKeyInto(uint64(rng.Intn(size)), vb[:])
		dev.DeleteTimed(th, vb[:], care)
		seq++
	}
	collectInto(snap, f.p, th)
	return float64(th.Now-start) / float64(ops)
}

func nextPow2(v uint64) uint64 {
	p := uint64(8)
	for p < v {
		p <<= 1
	}
	return p
}

var _ = cuckoo.ErrTableFull // the update loop relies on capacity headroom
