package flowwire

import (
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"halo/internal/flowserve"
)

// TestShmTransportOps runs the full op surface over the shared-memory
// transport: the wire protocol and server runtime are transport-agnostic,
// so everything that works on TCP and unix must work identically here.
func TestShmTransportOps(t *testing.T) {
	_, tbl, addr := startServerOn(t, TransportShm, flowserve.Config{Shards: 4, Entries: 4096, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{Transport: TransportShm, Conns: 2})

	if h := cl.Hello(); h.KeyLen != 20 || h.Shards != 4 || h.Capacity != tbl.Capacity() {
		t.Fatalf("HELLO over shm = %+v", h)
	}
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(wkey(i), i*3); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := cl.Lookup(wkey(i)); !ok || v != i*3 {
			t.Fatalf("lookup %d = (%d,%v)", i, v, ok)
		}
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = wkey(uint64(i))
	}
	results := make([]flowserve.Result, n)
	if hits := cl.LookupMany(keys, results); hits != n {
		t.Fatalf("LookupMany hits = %d, want %d", hits, n)
	}
	if !cl.Update(wkey(7), 999) {
		t.Fatal("update failed")
	}
	if v, _ := cl.Lookup(wkey(7)); v != 999 {
		t.Fatalf("post-update value = %d", v)
	}
	if !cl.Delete(wkey(8)) {
		t.Fatal("delete failed")
	}
	if _, ok := cl.Lookup(wkey(8)); ok {
		t.Fatal("deleted key still present")
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
	if c := cl.Counters(); c.Errors != 0 {
		t.Fatalf("clean shm run counted errors: %+v", c)
	}
}

// TestShmSegmentUnlinkedAfterHandshake pins the segment lifetime contract:
// once a connection is established the filesystem holds only the handshake
// socket — the segment file was unlinked at ack time, so a crash from then
// on leaks no disk artifacts.
func TestShmSegmentUnlinkedAfterHandshake(t *testing.T) {
	_, _, addr := startServerOn(t, TransportShm, flowserve.Config{Shards: 1, Entries: 128, KeyLen: 20}, Config{})
	cl := dialTest(t, addr, Options{Transport: TransportShm})
	if _, ok := cl.Lookup(wkey(1)); ok {
		t.Fatal("lookup hit in empty table")
	}
	segs, err := filepath.Glob(addr + shmSegSuffix + "*")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("segment files survive the handshake: %v", segs)
	}
}

// TestListenRemovesStaleShmArtifacts pins flowserved restart behavior for
// shm, the analogue of the stale-unix-socket test plus the segment sweep: a
// crashed server leaves its handshake socket (nobody accepting) and, if it
// died mid-handshake, segment files — Listen removes all of it and rebinds.
// A live server's socket and segments are left alone.
func TestListenRemovesStaleShmArtifacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.sock")

	// Manufacture a crashed server: a dead socket plus two orphaned
	// segment files from a handshake that never finished.
	ua, err := net.ResolveUnixAddr("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	ul, err := net.ListenUnix("unix", ua)
	if err != nil {
		t.Fatal(err)
	}
	ul.SetUnlinkOnClose(false)
	ul.Close()
	orphans := []string{path + shmSegSuffix + "12345.1", path + shmSegSuffix + "12345.2"}
	for _, seg := range orphans {
		if err := os.WriteFile(seg, make([]byte, 128), 0o600); err != nil {
			t.Fatal(err)
		}
	}

	ln, err := Listen(TransportShm, path)
	if err != nil {
		t.Fatalf("Listen over crashed server's artifacts: %v", err)
	}
	defer ln.Close()
	for _, seg := range orphans {
		if _, err := os.Lstat(seg); !os.IsNotExist(err) {
			t.Errorf("orphaned segment %s survived the sweep", seg)
		}
	}

	// While the first listener is live: a second bind must fail, and must
	// not sweep the live server's segment files.
	liveSeg := path + shmSegSuffix + "live.1"
	if err := os.WriteFile(liveSeg, make([]byte, 128), 0o600); err != nil {
		t.Fatal(err)
	}
	if ln2, err := Listen(TransportShm, path); err == nil {
		ln2.Close()
		t.Fatal("Listen stole a live server's shm path")
	}
	if _, err := os.Lstat(liveSeg); err != nil {
		t.Errorf("live server's segment was swept: %v", err)
	}
}

// shmLoopbackPair builds a raw connected shm conn pair (no flowwire server
// on top) for conn-level tests.
func shmLoopbackPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pair.sock")
	ln, err := listenShm(path, minShmRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			accepted <- nil
			return
		}
		accepted <- nc
	}()
	client, err = dialShm(path, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	server = <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { server.Close() })
	return client, server
}

// TestShmConnDeadlines pins the conn-level blocking semantics the server
// runtime depends on: an expired read deadline yields
// os.ErrDeadlineExceeded (not a hang), and SetReadDeadline(now) unparks an
// already-blocked reader — that is how Drain interrupts idle connections.
func TestShmConnDeadlines(t *testing.T) {
	client, server := shmLoopbackPair(t)

	server.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := server.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read past deadline = %v, want ErrDeadlineExceeded", err)
	}

	// Blocked reader, deadline set from another goroutine mid-park.
	server.SetReadDeadline(time.Time{})
	errCh := make(chan error, 1)
	go func() {
		_, err := server.Read(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	server.SetReadDeadline(time.Now())
	select {
	case err := <-errCh:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("interrupted read = %v, want ErrDeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SetReadDeadline(now) did not unpark the reader")
	}

	// The conn still works after deadline errors.
	server.SetReadDeadline(time.Time{})
	if _, err := client.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if n, err := server.Read(buf); err != nil || string(buf[:n]) != "ok" {
		t.Fatalf("post-deadline read = %q, %v", buf[:n], err)
	}
}

// TestShmConnPeerClose pins the hangup semantics: the peer closing hands
// the reader any residual ring bytes first, then io.EOF — the same drain
// order a socket gives, which the server's reader loop relies on to
// process a client's final pipelined frames.
func TestShmConnPeerClose(t *testing.T) {
	client, server := shmLoopbackPair(t)
	if _, err := client.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	client.Close()

	buf := make([]byte, 64)
	got := make([]byte, 0, 16)
	for {
		n, err := server.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read after peer close = %v, want io.EOF", err)
		}
	}
	if string(got) != "last words" {
		t.Fatalf("residual bytes = %q", got)
	}

	// Writing at a dead peer fails rather than filling the ring forever.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := server.Write(make([]byte, 32)); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write to dead peer never failed")
		}
	}
}

// TestShmConnFullRingBackpressure pushes more than a ring's capacity with a
// slow consumer: Write must block (not drop or error) and deliver every
// byte in order once the consumer catches up.
func TestShmConnFullRingBackpressure(t *testing.T) {
	client, server := shmLoopbackPair(t) // 64-byte rings
	const total = 8 << 10
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, total)
		for wrote := 0; wrote < total; {
			chunk := 200 // several times the ring capacity per call
			if rem := total - wrote; chunk > rem {
				chunk = rem
			}
			for i := 0; i < chunk; i++ {
				buf[i] = byte(wrote + i)
			}
			n, err := client.Write(buf[:chunk])
			if err != nil {
				errCh <- err
				return
			}
			wrote += n
		}
		errCh <- nil
	}()
	buf := make([]byte, 37)
	var want byte
	for got := 0; got < total; {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatalf("read at byte %d: %v", got, err)
		}
		for _, b := range buf[:n] {
			if b != want {
				t.Fatalf("byte %d = %d, want %d", got, b, want)
			}
			want++
			got++
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestShmLoopbackSteadyStateAllocs extends the zero-alloc gate to the full
// client hot path over shm: once the pools and the conn's park timer are
// warm, a LookupMany round trip allocates nothing on the calling goroutine
// — the ring transport must not cost the client the 0 B/op contract the
// socket transports already meet.
func TestShmLoopbackSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on sync operations")
	}
	const batch = 64
	_, tbl, addr := startServerOn(t, TransportShm, flowserve.Config{Shards: 4, Entries: 8192, KeyLen: 20}, Config{})
	keys := make([][]byte, batch)
	for i := range keys {
		keys[i] = wkey(uint64(i))
		if err := tbl.Insert(keys[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl := dialTest(t, addr, Options{Transport: TransportShm})
	results := make([]flowserve.Result, batch)
	for i := 0; i < 64; i++ {
		if hits := cl.LookupMany(keys, results); hits != batch {
			t.Fatalf("warmup hits = %d", hits)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if hits := cl.LookupMany(keys, results); hits != batch {
			t.Fatalf("hits = %d", hits)
		}
	})
	if allocs != 0 {
		t.Fatalf("shm LookupMany allocates %.1f times per op, want 0", allocs)
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestShmSteadyStateSyscallFree is the syscall-free acceptance gate. Every
// post-handshake syscall the transport can make flows through the counted
// sites (doorbell writes, doorbell wakes, parks — see shmConnCounters), so
// a near-zero counter delta across a loaded window proves the frame path
// runs on memory alone. Sockets pay ≥4 syscalls per batch; the gate allows
// at most one counted event per five batches — two orders of magnitude
// under socket cost, with headroom for a GC pause parking a waiter.
func TestShmSteadyStateSyscallFree(t *testing.T) {
	const batch = 64
	_, tbl, addr := startServerOn(t, TransportShm, flowserve.Config{Shards: 4, Entries: 8192, KeyLen: 20}, Config{})
	keys := make([][]byte, batch)
	for i := range keys {
		keys[i] = wkey(uint64(i))
		if err := tbl.Insert(keys[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl := dialTest(t, addr, Options{Transport: TransportShm})
	results := make([]flowserve.Result, batch)
	for i := 0; i < 32; i++ {
		if hits := cl.LookupMany(keys, results); hits != batch {
			t.Fatalf("warmup hits = %d", hits)
		}
	}

	const ops = 2000
	d0, w0, p0 := ShmCounters()
	for i := 0; i < ops; i++ {
		if hits := cl.LookupMany(keys, results); hits != batch {
			t.Fatalf("hits = %d", hits)
		}
	}
	d1, w1, p1 := ShmCounters()
	events := (d1 - d0) + (w1 - w0) + (p1 - p0)
	t.Logf("%d batches: %d doorbells, %d wakes, %d parks", ops, d1-d0, w1-w0, p1-p0)
	if events > ops/5 {
		t.Fatalf("%d kernel-touching events across %d batches — steady state is not syscall-free", events, ops)
	}
}
