package sim

// Ticket is a completion token for a multi-cycle operation: a component
// returns a Ticket whose Done cycle tells the caller when the result is
// available. Tickets compose: a pipeline stage that depends on several
// operations waits for the max of their Done cycles.
type Ticket struct {
	Issued Cycle
	Done   Cycle
}

// Latency returns the number of cycles between issue and completion.
func (t Ticket) Latency() Cycle { return t.Done - t.Issued }

// After returns a ticket issued like t but completing no earlier than `at`.
func (t Ticket) After(at Cycle) Ticket {
	if t.Done < at {
		t.Done = at
	}
	return t
}

// MaxDone returns the latest completion cycle among the tickets, or `def`
// when the list is empty.
func MaxDone(def Cycle, tickets ...Ticket) Cycle {
	done := def
	for _, t := range tickets {
		if t.Done > done {
			done = t.Done
		}
	}
	return done
}

// Resource models a unit that can service one operation at a time with a
// fixed occupancy per operation (e.g. a DRAM bank, a hash unit, a bus port).
// Claim serialises requests: an operation arriving while the resource is busy
// queues behind the previous one.
type Resource struct {
	freeAt Cycle
}

// Claim reserves the resource starting no earlier than `at` for `occupancy`
// cycles and returns the cycle at which the claimed use begins.
func (r *Resource) Claim(at Cycle, occupancy Cycle) (start Cycle) {
	if r.freeAt > at {
		start = r.freeAt
	} else {
		start = at
	}
	r.freeAt = start + occupancy
	return start
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Cycle { return r.freeAt }

// Reset makes the resource immediately available.
func (r *Resource) Reset() { r.freeAt = 0 }
