// Package classify implements the flow-classification stack of an OVS-style
// virtual switch (paper §2.2, Fig. 2a): the exact-match cache (EMC), the
// MegaFlow layer (tuple space search over wildcard masks, first match wins)
// and the OpenFlow layer (search every tuple, highest priority wins). Rule
// tables are cuckoo hash tables resident in simulated memory, so both the
// software path and the HALO accelerators can classify.
package classify

import (
	"fmt"

	"halo/internal/packet"
)

// Mask describes one wildcard pattern over the five-tuple: prefix lengths
// for the IPs and wildcard bits for ports and protocol. Rules sharing a Mask
// live in the same tuple (hash table).
type Mask struct {
	SrcIPBits   uint8 // 0..32 prefix bits that must match
	DstIPBits   uint8
	SrcPortWild bool
	DstPortWild bool
	ProtoWild   bool
}

// ExactMask matches every header bit (the EMC's implicit mask).
var ExactMask = Mask{SrcIPBits: 32, DstIPBits: 32}

func prefixMask(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - bits)
}

// Apply zeroes the wildcarded bits of a tuple, producing the canonical
// masked key for this tuple's hash table.
func (m Mask) Apply(t packet.FiveTuple) packet.FiveTuple {
	t.SrcIP &= prefixMask(m.SrcIPBits)
	t.DstIP &= prefixMask(m.DstIPBits)
	if m.SrcPortWild {
		t.SrcPort = 0
	}
	if m.DstPortWild {
		t.DstPort = 0
	}
	if m.ProtoWild {
		t.Proto = 0
	}
	return t
}

// Key returns the packed masked key as a fresh slice.
func (m Mask) Key(t packet.FiveTuple) []byte {
	return m.Apply(t).Packed()
}

// KeyInto packs the masked key into buf (at least packet.KeyBytes long),
// for hot paths that reuse a scratch buffer.
func (m Mask) KeyInto(t packet.FiveTuple, buf []byte) {
	m.Apply(t).Pack(buf)
}

// Valid reports whether the mask is well formed.
func (m Mask) Valid() bool {
	return m.SrcIPBits <= 32 && m.DstIPBits <= 32
}

// Specificity counts matched bits — a coarse priority tiebreak used when
// generating rule sets.
func (m Mask) Specificity() int {
	s := int(m.SrcIPBits) + int(m.DstIPBits)
	if !m.SrcPortWild {
		s += 16
	}
	if !m.DstPortWild {
		s += 16
	}
	if !m.ProtoWild {
		s += 8
	}
	return s
}

func (m Mask) String() string {
	return fmt.Sprintf("Mask{src/%d dst/%d sp=%v dp=%v proto=%v}",
		m.SrcIPBits, m.DstIPBits, !m.SrcPortWild, !m.DstPortWild, !m.ProtoWild)
}

// ActionKind is what the switch does with a matched packet.
type ActionKind uint8

// Action kinds.
const (
	ActionDrop ActionKind = iota
	ActionOutput
	ActionNAT
	ActionMirror
)

// Action is a match's consequence.
type Action struct {
	Kind ActionKind
	Port int // output/mirror port, NAT pool index
}

// Match is a classification result.
type Match struct {
	Action   Action
	Priority uint16
	RuleID   uint32
}
