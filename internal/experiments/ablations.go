package experiments

import (
	"fmt"

	"halo/internal/halo"
	"halo/internal/metrics"
	"halo/internal/noc"
)

// AblationResult holds the design-choice sweeps DESIGN.md calls out: they
// quantify how much each HALO mechanism contributes.
type AblationResult struct {
	MetaCacheSpeedup float64 // metadata cache on vs off
	LockCostPct      float64 // hardware lock on vs off
	DepthCycles      map[int]float64
	DispatchCycles   map[string]float64
	Table            *metrics.Table
}

// RunAblations sweeps the accelerator design choices.
func RunAblations(cfg Config) *AblationResult {
	lookups := pickSize(cfg, 1500, 6000)
	res := &AblationResult{
		DepthCycles:    map[int]float64{},
		DispatchCycles: map[string]float64{},
	}
	res.Table = metrics.NewTable("Ablations: HALO design choices", "knob", "setting", "cyc/lookup", "note")

	// Metadata cache on/off: without it every query re-reads the metadata
	// line from the LLC.
	on := runAblationPoint(lookups, func(u *halo.UnitConfig) {})
	off := runAblationPoint(lookups, func(u *halo.UnitConfig) { u.Accel.MetaCacheTables = 1; u.Accel.MetaCacheOff = true })
	res.MetaCacheSpeedup = off / on
	res.Table.AddRow("metadata-cache", "on", on, "")
	res.Table.AddRow("metadata-cache", "off", off, fmt.Sprintf("%.2fx slower", res.MetaCacheSpeedup))

	// Hardware lock on/off: locking costs nothing on the read path.
	noLock := runAblationPoint(lookups, func(u *halo.UnitConfig) { u.Accel.LockEnabled = false })
	res.LockCostPct = (on - noLock) / on
	res.Table.AddRow("hardware-lock", "off", noLock, metrics.Percent(res.LockCostPct)+" of locked time")

	// Scoreboard depth: deeper scoreboards absorb bursts.
	for _, depth := range []int{1, 4, 10, 16} {
		c := runAblationBurst(lookups, depth)
		res.DepthCycles[depth] = c
		res.Table.AddRow("scoreboard-depth", fmt.Sprintf("%d", depth), c, "burst workload")
	}

	// Dispatch policy. The by-table policy's payoff is metadata locality:
	// with more live tables than one metadata cache holds, hashing by
	// table keeps each table's metadata resident on one accelerator, while
	// round-robin thrashes every cache. 24 tables > the 10-table capacity.
	policies := map[string]noc.DispatchPolicy{
		"by-table":    noc.DispatchByTable,
		"by-key-line": noc.DispatchByKeyLine,
		"round-robin": noc.DispatchRoundRobin,
	}
	for name, pol := range policies {
		res.DispatchCycles[name] = runAblationMultiTable(lookups, pol)
	}
	for _, name := range []string{"by-table", "by-key-line", "round-robin"} {
		res.Table.AddRow("dispatch", name, res.DispatchCycles[name], "24 live tables")
	}
	return res
}

// runAblationMultiTable measures blocking lookups round-robining over 24
// tables under the given dispatch policy.
func runAblationMultiTable(lookups int, pol noc.DispatchPolicy) float64 {
	pcfg := halo.DefaultPlatformConfig()
	pcfg.Unit.Dispatch = pol
	p := halo.NewPlatform(pcfg)
	const nTables = 24
	fixtures := make([]*lookupFixture, nTables)
	for i := range fixtures {
		fixtures[i] = fixtureOn(p, 1<<10, 0.75)
	}
	th := fixtures[0].thread
	for i := 0; i < lookups/2; i++ {
		f := fixtures[i%nTables]
		p.Unit.LookupBAt(th, f.table.Base(), f.stageKeyDMA(uint64(i)))
	}
	start := th.Now
	for i := 0; i < lookups; i++ {
		f := fixtures[i%nTables]
		p.Unit.LookupBAt(th, f.table.Base(), f.stageKeyDMA(uint64(i*13)))
	}
	return float64(th.Now-start) / float64(lookups)
}

func runAblationPoint(lookups int, mutate func(*halo.UnitConfig)) float64 {
	pcfg := halo.DefaultPlatformConfig()
	mutate(&pcfg.Unit)
	p := halo.NewPlatform(pcfg)
	f := fixtureOn(p, 1<<14, 0.75)
	for i := 0; i < lookups/2; i++ {
		p.Unit.LookupBAt(f.thread, f.table.Base(), f.stageKeyDMA(uint64(i)))
	}
	start := f.thread.Now
	for i := 0; i < lookups; i++ {
		p.Unit.LookupBAt(f.thread, f.table.Base(), f.stageKeyDMA(uint64(i*13)))
	}
	return float64(f.thread.Now-start) / float64(lookups)
}

// runAblationBurst measures a bursty all-cores workload against one table,
// where the scoreboard depth governs queueing.
func runAblationBurst(lookups int, depth int) float64 {
	pcfg := halo.DefaultPlatformConfig()
	pcfg.Unit.Accel.ScoreboardDepth = depth
	p := halo.NewPlatform(pcfg)
	f := fixtureOn(p, 1<<14, 0.75)
	var lastDone float64
	a := p.Unit.Accelerator(0)
	keyAddr := f.stageKeyDMA(1)
	for i := 0; i < lookups; i++ {
		r := a.Process(0, halo.Query{Core: i % 16, TableAddr: f.table.Base(), KeyAddr: keyAddr})
		if float64(r.Done) > lastDone {
			lastDone = float64(r.Done)
		}
	}
	return lastDone / float64(lookups)
}
