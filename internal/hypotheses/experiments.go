package hypotheses

import (
	"halo/internal/flowserve"
)

// shardBatchExperiment: PR 4 replaced naive per-key lookups with
// shard-grouped batching (Batch.LookupMany counting-sorts keys by shard and
// serves each group under one seqlock window). The claim riding on that
// change — "batching beats calling Lookup in a loop" — is what this
// experiment pins down across seeds.
func shardBatchExperiment() Experiment {
	return Experiment{
		Name:  "shard-grouped-batching",
		Title: "Shard-grouped batching (Batch.LookupMany) beats naive per-key Lookup loops",
		Kind:  KindDominance,
		ArmA:  "batched",
		ArmB:  "naive",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			batch := tbl.NewBatch()
			batched := func(bkeys [][]byte, results []flowserve.Result) {
				batch.LookupMany(bkeys, results)
			}
			naive := func(bkeys [][]byte, results []flowserve.Result) {
				for j, k := range bkeys {
					v, ok := tbl.Lookup(k)
					results[j] = flowserve.Result{Value: v, OK: ok}
				}
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, batched, naive, nil)
			if err != nil {
				return SeedResult{}, err
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}

// pinnedReaderExperiment: PR 5 introduced the Reader interface, whose
// pooled Table.LookupMany entry point costs a sync.Pool round-trip per
// call; PinnedReader exists so hot loops can pin that scratch once. The
// serving API is only an acceptable default if going through a PinnedReader
// costs the same as owning the Batch directly — an equivalence claim.
func pinnedReaderExperiment() Experiment {
	return Experiment{
		Name:  "pinned-reader-equivalence",
		Title: "PinnedReader lookups are within 5% of direct Batch lookups",
		Kind:  KindEquivalence,
		ArmA:  "pinned-reader",
		ArmB:  "direct-batch",
		Run: func(cfg Config, seed uint64) (SeedResult, error) {
			w, keys := buildPopulation(cfg.Flows, seed)
			tbl, err := newServingTable(cfg, keys)
			if err != nil {
				return SeedResult{}, err
			}
			reader := tbl.NewPinnedReader()
			pinned := func(bkeys [][]byte, results []flowserve.Result) {
				reader.LookupMany(bkeys, results)
			}
			batch := tbl.NewBatch()
			direct := func(bkeys [][]byte, results []flowserve.Result) {
				batch.LookupMany(bkeys, results)
			}
			aNs, bNs, err := timeArms(w, keys, cfg, seed, pinned, direct, nil)
			if err != nil {
				return SeedResult{}, err
			}
			return SeedResult{ANsPerOp: aNs, BNsPerOp: bNs}, nil
		},
	}
}
