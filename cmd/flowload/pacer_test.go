package main

import (
	"testing"
	"time"
)

func TestPacerIntendedTimesAreFixed(t *testing.T) {
	start := time.Unix(1000, 0)
	p := newPacer(start, 16_000, 16) // 1000 batches/sec → 1ms interval
	if p.interval != time.Millisecond {
		t.Fatalf("interval = %v, want 1ms", p.interval)
	}
	for _, tc := range []struct {
		tick int64
		want time.Duration
	}{{0, 0}, {1, time.Millisecond}, {250, 250 * time.Millisecond}} {
		if got := p.intended(tc.tick).Sub(start); got != tc.want {
			t.Fatalf("intended(%d) = start+%v, want start+%v", tc.tick, got, tc.want)
		}
	}
}

func TestPacerWaitHoldsSchedule(t *testing.T) {
	start := time.Now()
	p := newPacer(start, 64_000, 16) // 4000 ticks/sec → 250µs interval
	// Claim ticks in order; each send must not run ahead of its schedule.
	for tick := int64(0); tick < 40; tick++ {
		due := p.wait(tick)
		if now := time.Now(); now.Before(due) {
			t.Fatalf("tick %d released %v early", tick, due.Sub(now))
		}
		if want := p.intended(tick); !due.Equal(want) {
			t.Fatalf("tick %d due %v, want %v", tick, due, want)
		}
	}
	elapsed := time.Since(start)
	if want := 39 * p.interval; elapsed < want {
		t.Fatalf("40 ticks finished in %v, schedule floor is %v", elapsed, want)
	}
}

func TestPacerLateTickReturnsImmediately(t *testing.T) {
	// A pacer whose schedule started well in the past must not sleep: the
	// backlog is charged as latency, not absorbed by the load generator.
	p := newPacer(time.Now().Add(-time.Second), 16_000, 16)
	t0 := time.Now()
	due := p.wait(500)
	if waited := time.Since(t0); waited > 50*time.Millisecond {
		t.Fatalf("late tick blocked for %v", waited)
	}
	if lat := time.Since(due); lat < 400*time.Millisecond {
		t.Fatalf("latency from intended send = %v, want the ~1s backlog visible", lat)
	}
}
