// Package cuckoo implements the bucketized cuckoo hash table that virtual
// switches use to store flow rules (paper §2.2, Fig. 2b), laid out in
// simulated physical memory so that the software lookup path and the HALO
// accelerators operate on the same bytes.
//
// The layout mirrors DPDK's rte_hash: a metadata block, an array of
// cache-line-sized buckets each holding eight {signature, key-value index}
// entries, and a key-value array. Insertion uses BFS cuckoo displacement;
// readers use optimistic locking against a table change counter.
package cuckoo

import (
	"errors"
	"fmt"

	"halo/internal/hashfn"
	"halo/internal/mem"
	"halo/internal/stats"
)

// EntriesPerBucket is the bucket width; 8 entries of 8 bytes fill one 64 B
// cache line, DPDK's default.
const EntriesPerBucket = 8

const entryBytes = 8

// Metadata field offsets within the table's first cache line. The HALO
// accelerator's metadata cache reads this line (paper §4.3), so the layout
// is part of the hardware/software contract.
const (
	metaMagic       = 0  // uint32
	metaKeyLen      = 4  // uint32
	metaBucketCount = 8  // uint64
	metaBucketBase  = 16 // uint64
	metaKVBase      = 24 // uint64
	metaKVSlotSize  = 32 // uint64
	metaFlags       = 40 // uint32
	metaVersion     = 44 // uint32: optimistic-lock change counter
	metaCapacity    = 48 // uint64
	// MetaBytes is the size of the metadata block (one line).
	MetaBytes = mem.LineSize
)

// Magic identifies a HALO-compatible table in simulated memory.
const Magic = 0x484c4f54 // "HLOT"

// Flags stored in the metadata block.
const (
	// FlagSFH marks a single-function hash table: entries have no
	// alternative bucket (the paper's baseline in Fig. 4).
	FlagSFH uint32 = 1 << 0
)

// Common errors.
var (
	ErrTableFull   = errors.New("cuckoo: table full (displacement path exhausted)")
	ErrKeyLen      = errors.New("cuckoo: key length does not match table")
	ErrKeyExists   = errors.New("cuckoo: key already present")
	ErrNotHaloible = errors.New("cuckoo: memory does not hold a valid table")
)

// Config parametrises table creation.
type Config struct {
	// Entries is the capacity in key-value slots; bucket count is derived
	// as the next power of two of Entries/EntriesPerBucket (min 2).
	Entries uint64
	// KeyLen is the fixed key size in bytes (network headers: 4..64).
	KeyLen int
	// SFH selects the single-function-hash baseline layout.
	SFH bool
}

// Table is a handle over a table resident in simulated memory. The handle
// caches immutable metadata; mutable state (the change counter, bucket and
// key-value contents) lives only in memory.
type Table struct {
	space mem.Space
	base  mem.Addr

	keyLen      int
	bucketCount uint64
	bucketBase  mem.Addr
	kvBase      mem.Addr
	kvSlotSize  uint64
	capacity    uint64
	flags       uint32

	free []uint32 // free key-value slot indexes (host-side allocator state)
	size uint64

	stats TableStats

	// probeHook, when non-nil, runs after each timed probe and before the
	// optimistic-lock re-read; tests install it to emulate a concurrent
	// writer moving the version counter mid-lookup.
	probeHook func()

	// Scratch state reused across operations so the steady-state lookup and
	// insert paths allocate nothing. Table handles were never safe for
	// concurrent use (the stats counters race); the scratch buffers lean on
	// the same single-owner contract.
	cmpBuf     [64]byte // key-compare buffer (KeyLen is validated ≤ 64)
	bfsNodes   []pathNode
	bfsPath    []pathNode
	bfsQueue   []frontierItem
	bfsVisited map[uint64]bool
}

// TableStats counts operations against one table handle, functional and
// timed paths combined. Lookups include the duplicate-check probe every
// insert performs; Displacements counts individual cuckoo moves.
type TableStats struct {
	Lookups       uint64
	Hits          uint64
	Inserts       uint64
	Deletes       uint64
	Updates       uint64
	Displacements uint64
	// Retries counts timed-lookup re-probes forced by a moving version
	// counter (the optimistic-lock protocol observed a writer and probed
	// again); RetryExhausted counts lookups that hit the retry bound and
	// returned the last probe's result anyway. See
	// LookupOptions.OptimisticLock for the give-up semantics.
	Retries        uint64
	RetryExhausted uint64
}

// Stats returns a copy of the operation counters.
func (t *Table) Stats() TableStats { return t.stats }

// ResetStats zeroes the operation counters.
func (t *Table) ResetStats() { t.stats = TableStats{} }

// CollectInto adds the table's counters to a snapshot under the cuckoo.*
// names; calling it for several tables accumulates them.
func (s TableStats) CollectInto(snap *stats.Snapshot) {
	snap.Add("cuckoo.lookups", s.Lookups)
	snap.Add("cuckoo.hits", s.Hits)
	snap.Add("cuckoo.inserts", s.Inserts)
	snap.Add("cuckoo.deletes", s.Deletes)
	snap.Add("cuckoo.updates", s.Updates)
	snap.Add("cuckoo.displacements", s.Displacements)
	snap.Add("cuckoo.lookup.retries", s.Retries)
	snap.Add("cuckoo.lookup.retry_exhausted", s.RetryExhausted)
}

// kvSlotSize returns the aligned key-value slot size for a key length:
// key bytes rounded up to 8, plus an 8-byte value, rounded to 16.
func slotSize(keyLen int) uint64 {
	keyAligned := (uint64(keyLen) + 7) &^ 7
	s := keyAligned + 8
	return (s + 15) &^ 15
}

// Footprint returns the total simulated-memory bytes a table with the given
// config occupies (metadata + buckets + key-value array).
func Footprint(cfg Config) uint64 {
	bc := bucketCountFor(cfg)
	return MetaBytes + bc*mem.LineSize + cfg.Entries*slotSize(cfg.KeyLen)
}

func bucketCountFor(cfg Config) uint64 {
	want := cfg.Entries / EntriesPerBucket
	if cfg.SFH {
		// SFH tables achieve only ~20% utilisation (paper §3.3): allocate
		// 5x the buckets so the same flow count still installs.
		want = cfg.Entries * 5 / EntriesPerBucket
	}
	bc := uint64(2)
	for bc < want {
		bc <<= 1
	}
	return bc
}

// Create lays a new empty table out in memory using the allocator and
// returns its handle.
func Create(space mem.Space, alloc *mem.Allocator, cfg Config) (*Table, error) {
	if cfg.KeyLen <= 0 || cfg.KeyLen > 64 {
		return nil, fmt.Errorf("cuckoo: key length %d out of range 1..64", cfg.KeyLen)
	}
	if cfg.Entries == 0 {
		return nil, errors.New("cuckoo: zero capacity")
	}
	bc := bucketCountFor(cfg)
	base := alloc.Alloc(MetaBytes, mem.LineSize)
	bucketBase := alloc.Alloc(bc*mem.LineSize, mem.LineSize)
	kvSlot := slotSize(cfg.KeyLen)
	kvBase := alloc.Alloc(cfg.Entries*kvSlot, mem.LineSize)

	var flags uint32
	if cfg.SFH {
		flags |= FlagSFH
	}
	mem.Write32(space, base+metaMagic, Magic)
	mem.Write32(space, base+metaKeyLen, uint32(cfg.KeyLen))
	mem.Write64(space, base+metaBucketCount, bc)
	mem.Write64(space, base+metaBucketBase, uint64(bucketBase))
	mem.Write64(space, base+metaKVBase, uint64(kvBase))
	mem.Write64(space, base+metaKVSlotSize, kvSlot)
	mem.Write32(space, base+metaFlags, flags)
	mem.Write32(space, base+metaVersion, 0)
	mem.Write64(space, base+metaCapacity, cfg.Entries)

	// The bucket array needs no explicit zeroing: the allocator never
	// reuses regions and fresh simulated memory reads as zero, which is
	// exactly the "empty entry" encoding (signature 0).

	t := &Table{
		space:       space,
		base:        base,
		keyLen:      cfg.KeyLen,
		bucketCount: bc,
		bucketBase:  bucketBase,
		kvBase:      kvBase,
		kvSlotSize:  kvSlot,
		capacity:    cfg.Entries,
		flags:       flags,
	}
	t.free = make([]uint32, 0, cfg.Entries)
	for i := int64(cfg.Entries) - 1; i >= 0; i-- {
		t.free = append(t.free, uint32(i))
	}
	return t, nil
}

// Attach opens an existing table at base (e.g. from another handle's
// address). Free-slot state is reconstructed by scanning the buckets.
func Attach(space mem.Space, base mem.Addr) (*Table, error) {
	if mem.Read32(space, base+metaMagic) != Magic {
		return nil, ErrNotHaloible
	}
	t := &Table{
		space:       space,
		base:        base,
		keyLen:      int(mem.Read32(space, base+metaKeyLen)),
		bucketCount: mem.Read64(space, base+metaBucketCount),
		bucketBase:  mem.Addr(mem.Read64(space, base+metaBucketBase)),
		kvBase:      mem.Addr(mem.Read64(space, base+metaKVBase)),
		kvSlotSize:  mem.Read64(space, base+metaKVSlotSize),
		capacity:    mem.Read64(space, base+metaCapacity),
		flags:       mem.Read32(space, base+metaFlags),
	}
	used := make(map[uint32]bool)
	for b := uint64(0); b < t.bucketCount; b++ {
		for e := 0; e < EntriesPerBucket; e++ {
			sig, idx := t.readEntry(b, e)
			if sig != 0 {
				used[idx] = true
				t.size++
			}
		}
	}
	t.free = make([]uint32, 0, t.capacity-t.size)
	for i := int64(t.capacity) - 1; i >= 0; i-- {
		if !used[uint32(i)] {
			t.free = append(t.free, uint32(i))
		}
	}
	return t, nil
}

// Base returns the table's metadata address — the value software loads into
// RAX before issuing LOOKUP instructions.
func (t *Table) Base() mem.Addr { return t.base }

// KeyLen returns the table's fixed key length.
func (t *Table) KeyLen() int { return t.keyLen }

// BucketCount returns the number of buckets.
func (t *Table) BucketCount() uint64 { return t.bucketCount }

// Capacity returns the number of key-value slots.
func (t *Table) Capacity() uint64 { return t.capacity }

// Size returns the number of live entries.
func (t *Table) Size() uint64 { return t.size }

// LoadFactor returns Size/Capacity.
func (t *Table) LoadFactor() float64 { return float64(t.size) / float64(t.capacity) }

// IsSFH reports whether the table uses the single-function-hash layout.
func (t *Table) IsSFH() bool { return t.flags&FlagSFH != 0 }

// Version returns the optimistic-locking change counter.
func (t *Table) Version() uint32 { return mem.Read32(t.space, t.base+metaVersion) }

// BucketAddr returns the address of bucket b's cache line.
func (t *Table) BucketAddr(b uint64) mem.Addr {
	return t.bucketBase + mem.Addr(b*mem.LineSize)
}

// KVAddr returns the address of key-value slot idx.
func (t *Table) KVAddr(idx uint32) mem.Addr {
	return t.kvBase + mem.Addr(uint64(idx)*t.kvSlotSize)
}

// VersionAddr returns the address of the change counter (the line writers
// bump and optimistic readers poll).
func (t *Table) VersionAddr() mem.Addr { return t.base + metaVersion }

func (t *Table) entryAddr(bucket uint64, entry int) mem.Addr {
	return t.BucketAddr(bucket) + mem.Addr(entry*entryBytes)
}

func (t *Table) readEntry(bucket uint64, entry int) (sig uint16, kvIdx uint32) {
	a := t.entryAddr(bucket, entry)
	return mem.Read16(t.space, a), mem.Read32(t.space, a+4)
}

func (t *Table) writeEntry(bucket uint64, entry int, sig uint16, kvIdx uint32) {
	a := t.entryAddr(bucket, entry)
	mem.Write16(t.space, a, sig)
	mem.Write32(t.space, a+4, kvIdx)
}

func (t *Table) readKey(idx uint32, buf []byte) {
	t.space.ReadAt(t.KVAddr(idx), buf[:t.keyLen])
}

func (t *Table) readValue(idx uint32) uint64 {
	keyAligned := (mem.Addr(t.keyLen) + 7) &^ 7
	return mem.Read64(t.space, t.KVAddr(idx)+keyAligned)
}

func (t *Table) writeKV(idx uint32, key []byte, value uint64) {
	t.space.WriteAt(t.KVAddr(idx), key)
	keyAligned := (mem.Addr(t.keyLen) + 7) &^ 7
	mem.Write64(t.space, t.KVAddr(idx)+keyAligned, value)
}

func (t *Table) keyEqual(idx uint32, key []byte) bool {
	buf := t.cmpBuf[:t.keyLen]
	if t.keyLen > len(t.cmpBuf) { // attached table with out-of-spec metadata
		buf = make([]byte, t.keyLen)
	}
	t.readKey(idx, buf)
	for i := range buf {
		if buf[i] != key[i] {
			return false
		}
	}
	return true
}

func (t *Table) bumpVersion() {
	mem.Write32(t.space, t.base+metaVersion, t.Version()+1)
}

// Hashes returns the primary hash, signature and the two candidate buckets
// for a key. SFH tables return the primary bucket twice.
func (t *Table) Hashes(key []byte) (h uint64, sig uint16, b1, b2 uint64) {
	h = hashfn.Hash(hashfn.SeedPrimary, key)
	sig = hashfn.Signature(h)
	b1, b2 = hashfn.BucketPair(h, t.bucketCount)
	if t.IsSFH() {
		b2 = b1
	}
	return
}

// Lookup finds a key functionally (no timing) and returns its value. A
// mismatched key length is a miss, and it still counts as a lookup so the
// hit rate reflects every probe the caller issued — TimedLookup accounts the
// same way (and additionally charges the early exit).
func (t *Table) Lookup(key []byte) (value uint64, ok bool) {
	t.stats.Lookups++
	if len(key) != t.keyLen {
		return 0, false
	}
	_, sig, b1, b2 := t.Hashes(key)
	for _, b := range [2]uint64{b1, b2} {
		for e := 0; e < EntriesPerBucket; e++ {
			s, idx := t.readEntry(b, e)
			if s == sig && t.keyEqual(idx, key) {
				t.stats.Hits++
				return t.readValue(idx), true
			}
		}
		if t.IsSFH() {
			break
		}
	}
	return 0, false
}

// maxDisplacements bounds the BFS cuckoo path length before declaring the
// table full.
const maxDisplacements = 128

// Insert adds a key-value pair. Inserting an existing key returns
// ErrKeyExists (use Update to change a value).
func (t *Table) Insert(key []byte, value uint64) error {
	if len(key) != t.keyLen {
		return ErrKeyLen
	}
	if _, exists := t.Lookup(key); exists {
		return ErrKeyExists
	}
	if len(t.free) == 0 {
		return ErrTableFull
	}
	_, sig, b1, b2 := t.Hashes(key)

	place := func(b uint64) bool {
		for e := 0; e < EntriesPerBucket; e++ {
			if s, _ := t.readEntry(b, e); s == 0 {
				idx := t.free[len(t.free)-1]
				t.free = t.free[:len(t.free)-1]
				t.writeKV(idx, key, value)
				t.writeEntry(b, e, sig, idx)
				t.size++
				return true
			}
		}
		return false
	}
	if place(b1) {
		t.stats.Inserts++
		return nil
	}
	if !t.IsSFH() && place(b2) {
		t.stats.Inserts++
		return nil
	}
	if t.IsSFH() {
		return ErrTableFull
	}

	// BFS over displacement paths from both candidate buckets.
	if path := t.findCuckooPath(b1, b2); path != nil {
		t.applyCuckooPath(path)
		if place(b1) || place(b2) {
			t.stats.Inserts++
			return nil
		}
	}
	return ErrTableFull
}

// pathNode is one step of a displacement path: the entry at (bucket, slot)
// moves to its alternative bucket.
type pathNode struct {
	bucket uint64
	slot   int
	parent int
}

// frontierItem is one BFS queue entry in findCuckooPath.
type frontierItem struct {
	bucket uint64
	node   int
}

// findCuckooPath BFS-searches for a chain of moves freeing a slot in b1 or
// b2. It returns the chain leaf-first-resolved (root..leaf order) or nil.
// The returned slice aliases the table's scratch state and is only valid
// until the next insert.
func (t *Table) findCuckooPath(b1, b2 uint64) []pathNode {
	nodes := t.bfsNodes[:0]
	queue := append(t.bfsQueue[:0], frontierItem{b1, -1}, frontierItem{b2, -1})
	head := 0
	if t.bfsVisited == nil {
		t.bfsVisited = make(map[uint64]bool)
	}
	visited := t.bfsVisited
	clear(visited)
	visited[b1], visited[b2] = true, true
	defer func() { t.bfsNodes, t.bfsQueue = nodes[:0], queue[:0] }()

	for head < len(queue) && len(nodes) < maxDisplacements*EntriesPerBucket {
		item := queue[head]
		head++
		for e := 0; e < EntriesPerBucket; e++ {
			sig, _ := t.readEntry(item.bucket, e)
			if sig == 0 {
				continue
			}
			alt := hashfn.AltBucket(item.bucket, sig, t.bucketCount)
			nodes = append(nodes, pathNode{bucket: item.bucket, slot: e, parent: item.node})
			nodeIdx := len(nodes) - 1
			// Does the alternative bucket have a free slot?
			for ae := 0; ae < EntriesPerBucket; ae++ {
				if s, _ := t.readEntry(alt, ae); s == 0 {
					// Collect leaf→root, then reverse to root→leaf order.
					path := t.bfsPath[:0]
					for i := nodeIdx; i >= 0; i = nodes[i].parent {
						path = append(path, nodes[i])
					}
					for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
						path[l], path[r] = path[r], path[l]
					}
					t.bfsPath = path
					return path
				}
			}
			if !visited[alt] {
				visited[alt] = true
				queue = append(queue, frontierItem{alt, nodeIdx})
			}
		}
	}
	return nil
}

// applyCuckooPath executes the moves leaf-first so no entry is ever
// unreachable; each move bumps the change counter (a concurrent optimistic
// reader would retry, paper Fig. 7a).
func (t *Table) applyCuckooPath(path []pathNode) {
	t.stats.Displacements += uint64(len(path))
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		sig, idx := t.readEntry(n.bucket, n.slot)
		alt := hashfn.AltBucket(n.bucket, sig, t.bucketCount)
		for ae := 0; ae < EntriesPerBucket; ae++ {
			if s, _ := t.readEntry(alt, ae); s == 0 {
				t.bumpVersion()
				t.writeEntry(alt, ae, sig, idx)
				t.writeEntry(n.bucket, n.slot, 0, 0)
				t.bumpVersion()
				break
			}
		}
	}
}

// Update changes the value of an existing key.
func (t *Table) Update(key []byte, value uint64) bool {
	if len(key) != t.keyLen {
		return false
	}
	_, sig, b1, b2 := t.Hashes(key)
	for _, b := range [2]uint64{b1, b2} {
		for e := 0; e < EntriesPerBucket; e++ {
			s, idx := t.readEntry(b, e)
			if s == sig && t.keyEqual(idx, key) {
				t.writeKV(idx, key, value)
				t.stats.Updates++
				return true
			}
		}
		if t.IsSFH() {
			break
		}
	}
	return false
}

// Delete removes a key, returning whether it was present.
func (t *Table) Delete(key []byte) bool {
	if len(key) != t.keyLen {
		return false
	}
	_, sig, b1, b2 := t.Hashes(key)
	for _, b := range [2]uint64{b1, b2} {
		for e := 0; e < EntriesPerBucket; e++ {
			s, idx := t.readEntry(b, e)
			if s == sig && t.keyEqual(idx, key) {
				t.bumpVersion()
				t.writeEntry(b, e, 0, 0)
				t.bumpVersion()
				t.free = append(t.free, idx)
				t.size--
				t.stats.Deletes++
				return true
			}
		}
		if t.IsSFH() {
			break
		}
	}
	return false
}

// KVPair is one live entry exported by Entries.
type KVPair struct {
	Key   []byte
	Value uint64
}

// Entries returns the live key-value pairs stored in one bucket, for
// table-walking consumers (e.g. loading a rule set into a TCAM model).
func (t *Table) Entries(bucket uint64) []KVPair {
	var out []KVPair
	for e := 0; e < EntriesPerBucket; e++ {
		sig, idx := t.readEntry(bucket, e)
		if sig == 0 {
			continue
		}
		key := make([]byte, t.keyLen)
		t.readKey(idx, key)
		out = append(out, KVPair{Key: key, Value: t.readValue(idx)})
	}
	return out
}

// BucketOccupancy returns a histogram of live entries per bucket
// (index 0..EntriesPerBucket), used for the paper's §3.3 utilisation
// analysis.
func (t *Table) BucketOccupancy() [EntriesPerBucket + 1]uint64 {
	var hist [EntriesPerBucket + 1]uint64
	for b := uint64(0); b < t.bucketCount; b++ {
		n := 0
		for e := 0; e < EntriesPerBucket; e++ {
			if s, _ := t.readEntry(b, e); s != 0 {
				n++
			}
		}
		hist[n]++
	}
	return hist
}

// Iterate calls fn for every live key-value pair, in bucket order. It
// returns early if fn returns false. Mutating the table during iteration is
// unsupported (matching rte_hash's iterator contract).
func (t *Table) Iterate(fn func(key []byte, value uint64) bool) {
	for b := uint64(0); b < t.bucketCount; b++ {
		for e := 0; e < EntriesPerBucket; e++ {
			sig, idx := t.readEntry(b, e)
			if sig == 0 {
				continue
			}
			key := make([]byte, t.keyLen)
			t.readKey(idx, key)
			if !fn(key, t.readValue(idx)) {
				return
			}
		}
	}
}
