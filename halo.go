// Package halo is a from-scratch reproduction of HALO (Yuan, Wang, Wang,
// Huang — ISCA 2019): near-cache accelerators for hash-table lookup that
// scale flow classification in NFV packet processing.
//
// The package bundles a simulated multicore platform (cache hierarchy, ring
// interconnect, DRAM) with the HALO accelerators installed, plus the
// software substrates the paper evaluates against: a DPDK-style cuckoo hash
// table, an OVS-style virtual switch with EMC and tuple-space-search layers,
// TCAM baselines, and hash-table-bound network functions.
//
// Quick start:
//
//	sys := halo.New()
//	table, _ := sys.NewTable(halo.TableConfig{Entries: 1 << 14, KeyLen: 16})
//	table.Insert(key, value)           // functional
//	th := sys.Thread(0)                // a software context on core 0
//	v, ok := table.TimedLookup(th, key, halo.SoftwareLookupDefaults()) // software path
//	v, ok = sys.Unit().LookupB(th, table.Base(), key)                  // LOOKUP_B
//
// Cycle counts accumulate on the Thread; compare th.Now across approaches.
// The experiments behind every table and figure of the paper live in
// internal/experiments and are runnable through cmd/halobench.
package halo

import (
	"halo/internal/classify"
	"halo/internal/cpu"
	"halo/internal/cuckoo"
	"halo/internal/dtree"
	"halo/internal/flowserve"
	ihalo "halo/internal/halo"
	"halo/internal/mem"
	"halo/internal/nf"
	"halo/internal/noc"
	"halo/internal/packet"
	"halo/internal/vswitch"
)

// Re-exported core types. Aliases expose the full internal APIs through the
// public package.
type (
	// System is a simulated machine with HALO installed.
	System struct {
		platform *ihalo.Platform
	}

	// Thread is a software execution context on one core.
	Thread = cpu.Thread

	// Table is a DPDK-style bucketized cuckoo hash table resident in the
	// system's simulated memory.
	Table = cuckoo.Table

	// TableConfig parametrises table creation.
	TableConfig = cuckoo.Config

	// LookupOptions tunes the software lookup path.
	LookupOptions = cuckoo.LookupOptions

	// Unit is the chip-wide HALO installation: per-slice accelerators and
	// the query distributor.
	Unit = ihalo.Unit

	// Hybrid switches between software and accelerated lookups using the
	// linear-counting flow registers (paper §4.6).
	Hybrid = ihalo.Hybrid

	// FlowRegister is the linear-counting cardinality estimator.
	FlowRegister = ihalo.FlowRegister

	// NBQuery and NBResult are the non-blocking lookup batch types.
	NBQuery  = ihalo.NBQuery
	NBResult = ihalo.NBResult

	// Addr is a simulated physical address.
	Addr = mem.Addr

	// FiveTuple is the canonical flow key.
	FiveTuple = packet.FiveTuple

	// Packet is a parsed network packet.
	Packet = packet.Packet

	// TupleSpace is the tuple-space-search classifier (MegaFlow/OpenFlow).
	TupleSpace = classify.TupleSpace

	// Mask is a wildcard pattern over the five-tuple.
	Mask = classify.Mask

	// Match is a classification result.
	Match = classify.Match

	// EMC is the exact-match cache layer.
	EMC = classify.EMC

	// Switch is the OVS-style virtual switch datapath.
	Switch = vswitch.Switch

	// SwitchConfig sizes a Switch.
	SwitchConfig = vswitch.Config

	// PlatformConfig configures the simulated machine.
	PlatformConfig = ihalo.PlatformConfig
)

// Option customises a System at construction.
type Option func(*PlatformConfig)

// WithConfig replaces the whole platform configuration.
func WithConfig(cfg PlatformConfig) Option {
	return func(c *PlatformConfig) { *c = cfg }
}

// WithDispatchPolicy selects the query-distribution policy.
func WithDispatchPolicy(p DispatchPolicy) Option {
	return func(c *PlatformConfig) { c.Unit.Dispatch = p }
}

// DispatchPolicy selects how lookup queries map to accelerators.
type DispatchPolicy = noc.DispatchPolicy

// Dispatch policies.
const (
	DispatchByTable    = noc.DispatchByTable
	DispatchByKeyLine  = noc.DispatchByKeyLine
	DispatchRoundRobin = noc.DispatchRoundRobin
)

// DefaultPlatformConfig returns the paper's Table 2 machine configuration.
func DefaultPlatformConfig() PlatformConfig { return ihalo.DefaultPlatformConfig() }

// New builds a simulated 16-core platform (paper Table 2) with HALO
// installed.
func New(opts ...Option) *System {
	cfg := ihalo.DefaultPlatformConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &System{platform: ihalo.NewPlatform(cfg)}
}

// Platform exposes the underlying simulated machine for advanced use
// (experiments, custom substrates).
func (s *System) Platform() *ihalo.Platform { return s.platform }

// Unit returns the HALO unit (accelerators + distributor).
func (s *System) Unit() *Unit { return s.platform.Unit }

// Thread creates a software context bound to a core.
func (s *System) Thread(core int) *Thread {
	return cpu.NewThread(s.platform.Hier, core)
}

// Cores returns the simulated core count.
func (s *System) Cores() int { return s.platform.Hier.Config().Cores }

// NewTable creates a cuckoo hash table in simulated memory.
func (s *System) NewTable(cfg TableConfig) (*Table, error) {
	return s.platform.NewTable(cfg)
}

// WarmTable pre-loads a table into the LLC (the paper's warm-up protocol).
func (s *System) WarmTable(t *Table) { s.platform.WarmTable(t) }

// NewHybrid builds a hybrid software/accelerator lookup controller.
func (s *System) NewHybrid() *Hybrid {
	return ihalo.NewHybrid(ihalo.DefaultHybridConfig(), s.platform.Unit)
}

// NewTupleSpace builds a tuple-space-search classifier. firstMatch selects
// MegaFlow semantics; otherwise every tuple is searched and the highest
// priority wins (OpenFlow semantics).
func (s *System) NewTupleSpace(firstMatch bool, entriesPerTuple uint64) *TupleSpace {
	mode := classify.HighestPriority
	if firstMatch {
		mode = classify.FirstMatch
	}
	return classify.NewTupleSpace(s.platform.Space, s.platform.Alloc, mode, entriesPerTuple)
}

// NewSwitch builds an OVS-style virtual switch on this system.
func (s *System) NewSwitch(cfg SwitchConfig) (*Switch, error) {
	return vswitch.New(s.platform, cfg)
}

// DefaultSwitchConfig mirrors OVS/DPDK defaults with the software engine.
func DefaultSwitchConfig() SwitchConfig { return vswitch.DefaultConfig() }

// HaloSwitchConfig is DefaultSwitchConfig with classification offloaded to
// the accelerators.
func HaloSwitchConfig() SwitchConfig {
	cfg := vswitch.DefaultConfig()
	cfg.Engine = vswitch.EngineHalo
	return cfg
}

// SoftwareLookupDefaults returns the optimized DPDK software-lookup
// configuration (optimistic locking + bucket prefetch).
func SoftwareLookupDefaults() LookupOptions { return cuckoo.DefaultLookupOptions() }

// NewNAT builds a network address translator on this system. Accelerated
// NFs use the HALO unit for their table lookups.
func (s *System) NewNAT(accelerated bool, entries uint64) (*nf.NAT, error) {
	return nf.NewNAT(s.platform, nfEngine(accelerated), entries)
}

// NewPacketFilter builds a hash-table packet filter on this system.
func (s *System) NewPacketFilter(accelerated bool, entries uint64) (*nf.Filter, error) {
	return nf.NewFilter(s.platform, nfEngine(accelerated), entries)
}

// NewPrads builds a passive asset tracker on this system.
func (s *System) NewPrads(accelerated bool, entries uint64) (*nf.Prads, error) {
	return nf.NewPrads(s.platform, nfEngine(accelerated), entries)
}

func nfEngine(accelerated bool) nf.Engine {
	if accelerated {
		return nf.EngineHalo
	}
	return nf.EngineSoftware
}

// Decision-tree classification (the paper's §4.8 generality demonstration).
type (
	// Tree is a HiCuts/EffiCuts-style decision tree resident in simulated
	// memory, walkable by software or by the HALO accelerators.
	Tree = dtree.Tree
	// TreeRule is one range rule over the five-tuple.
	TreeRule = dtree.Rule
)

// AnyTreeRule returns a tree rule matching every packet.
func AnyTreeRule(priority uint16, value uint64) TreeRule { return dtree.AnyRule(priority, value) }

// TreeKey encodes a five-tuple in the tree's wire-order key format.
func TreeKey(t FiveTuple) []byte { return dtree.Key(t) }

// BuildTree constructs a decision tree over range rules in this system's
// memory.
func (s *System) BuildTree(rules []TreeRule) (*Tree, error) {
	return dtree.Build(s.platform.Space, s.platform.Alloc, rules)
}

// AllocLines reserves n cache lines of simulated memory (e.g. for packet
// buffers) and returns the base address.
func (s *System) AllocLines(n uint64) Addr { return s.platform.Alloc.AllocLines(n) }

// DMAWrite delivers data into simulated memory the way a DDIO-capable NIC
// does: the bytes land in the LLC, clean of any core's private cache, and no
// core time is charged.
func (s *System) DMAWrite(addr Addr, data []byte) {
	s.platform.Space.WriteAt(addr, data)
	for line := mem.LineAddr(addr); line < addr+Addr(len(data)); line += mem.LineSize {
		s.platform.Hier.DMAWrite(line)
	}
}

// ReadMemory reads simulated memory functionally (no timing).
func (s *System) ReadMemory(addr Addr, buf []byte) { s.platform.Space.ReadAt(addr, buf) }

// Serving layer (DESIGN.md §8–9). Unlike everything above, this is not a
// simulation: ServeTable is the real concurrent sharded flow table that
// cmd/flowload load-tests and cmd/flowserved exposes over TCP via the
// flowwire protocol.
type (
	// ServeTable is the concurrent sharded serving table (real memory, real
	// goroutines — the live counterpart of the simulated Table).
	ServeTable = flowserve.Table

	// ServeConfig sizes a ServeTable.
	ServeConfig = flowserve.Config

	// ServeResult is one key's outcome in a batched lookup.
	ServeResult = flowserve.Result

	// ServeReader is the serving read interface (Lookup/LookupMany),
	// satisfied by *ServeTable in-process and by flowwire.Client over TCP.
	ServeReader = flowserve.Reader

	// ServeWriter is the serving mutation interface (Insert/Update/Delete),
	// satisfied by the same two implementations.
	ServeWriter = flowserve.Writer
)

// NewServeTable builds a serving table and returns it as the unified
// Reader/Writer pair, so callers written against the interfaces swap freely
// between an in-process table and a remote flowwire client (DESIGN.md §9).
// Both returned values are the same *ServeTable.
func NewServeTable(cfg ServeConfig) (ServeReader, ServeWriter, error) {
	t, err := flowserve.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return t, t, nil
}

// ClockGHz is the simulated core frequency (paper Table 2).
const ClockGHz = 2.1

// CyclesToMicros converts simulated cycles to microseconds at the platform
// clock.
func CyclesToMicros(cycles uint64) float64 {
	return float64(cycles) / (ClockGHz * 1e3)
}
