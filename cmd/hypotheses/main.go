// Command hypotheses runs the repository's hypothesis experiments
// (internal/hypotheses) across the standard seed set and prints
// FINDINGS-ready result blocks: per-seed tables, effect summaries and a
// BLIS verdict per experiment. With -json it also writes a halo-bench/v1
// document (one benchmark per experiment/arm/seed) that cmd/benchdiff can
// compare across commits.
//
// Usage:
//
//	hypotheses                         # full run, all experiments, seeds 42,123,456
//	hypotheses -run shard-grouped-batching
//	hypotheses -smoke -json hyp.json   # CI: small run + machine-readable artifact
//	hypotheses -seeds 7,8,9 -flows 50000 -ops 500000
//
// The exit code reflects measurement integrity, not statistical outcome: a
// refuted hypothesis is a finding to record in hypotheses/<name>/FINDINGS.md,
// not a build failure. Only a harness error (wrong lookup values, missed
// flows, unknown experiment) exits non-zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"halo/internal/benchjson"
	"halo/internal/hypotheses"
	"halo/internal/listflag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hypotheses", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runFl    = fs.String("run", "all", "experiment to run ('all' or a registry name)")
		smoke    = fs.Bool("smoke", false, "use the small CI configuration")
		seedsFl  = fs.String("seeds", "", "override the seed list (comma-separated, default 42,123,456)")
		flows    = fs.Int("flows", 0, "override flow population per seed")
		ops      = fs.Int64("ops", 0, "override lookups per arm per repeat")
		batch    = fs.Int("batch", 0, "override keys per batch")
		shards   = fs.Int("shards", 0, "override table shard count")
		repeats  = fs.Int("repeats", 0, "override timed repeats per arm")
		jsonPath = fs.String("json", "", "write a halo-bench/v1 document of all arm measurements")
		list     = fs.Bool("list", false, "list registered experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range hypotheses.Registry() {
			fmt.Fprintf(stdout, "%-28s %-24s %s\n", e.Name, e.Kind, e.Title)
		}
		return 0
	}

	cfg := hypotheses.DefaultConfig()
	if *smoke {
		cfg = hypotheses.SmokeConfig()
	}
	if *seedsFl != "" {
		seeds, err := listflag.Uint64s("seeds", *seedsFl)
		if err != nil {
			fmt.Fprintf(stderr, "hypotheses: %v\n", err)
			return 2
		}
		cfg.Seeds = seeds
	}
	if *flows > 0 {
		cfg.Flows = *flows
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	var todo []hypotheses.Experiment
	if *runFl == "all" {
		todo = hypotheses.Registry()
	} else {
		e, ok := hypotheses.Find(*runFl)
		if !ok {
			fmt.Fprintf(stderr, "hypotheses: unknown experiment %q (-list shows the registry)\n", *runFl)
			return 2
		}
		todo = []hypotheses.Experiment{e}
	}

	fmt.Fprintf(stdout, "hypotheses: seeds=%v flows=%d ops=%d batch=%d shards=%d repeats=%d\n\n",
		cfg.Seeds, cfg.Flows, cfg.Ops, cfg.Batch, cfg.Shards, cfg.Repeats)

	var results []hypotheses.Result
	for _, e := range todo {
		fmt.Fprintf(stderr, "hypotheses: running %s (%d seeds)...\n", e.Name, len(cfg.Seeds))
		res, err := hypotheses.RunExperiment(e, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "hypotheses: %v\n", err)
			return 1
		}
		res.Render(stdout)
		results = append(results, res)
	}

	if *jsonPath != "" {
		doc := hypotheses.Document(cfg, results)
		data, err := benchjson.Encode(doc)
		if err != nil {
			fmt.Fprintf(stderr, "hypotheses: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "hypotheses: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "hypotheses: wrote %s (%d benchmarks)\n", *jsonPath, len(doc.Benchmarks))
	}
	return 0
}
