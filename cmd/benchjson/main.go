// Command benchjson converts `go test -bench` output into a small
// schema-versioned JSON document so CI can archive performance numbers as a
// machine-readable artifact and later sessions can diff them.
//
// Usage:
//
//	go test -bench 'RunAllSerial|Fig9SingleLookup' -benchmem -benchtime 1x . |
//	    go run ./cmd/benchjson -o BENCH_perf.json
//
// The document intentionally carries no timestamp or hostname: two runs of
// the same toolchain on the same code should encode identically except for
// the measured values themselves.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"halo/internal/benchjson"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench-output.txt]")
		os.Exit(2)
	}

	doc, err := benchjson.Parse(bufio.NewReader(in))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data, err := benchjson.Encode(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s (%d benchmarks, %d bytes)\n",
		*out, len(doc.Benchmarks), len(data))
}
