package experiments

import (
	"halo/internal/cuckoo"
	"halo/internal/metrics"
)

// Table1Result reproduces Table 1: the retired-instruction profile of one
// software hash-table lookup.
type Table1Result struct {
	InstructionsPerLookup float64
	LoadShare             float64
	StoreShare            float64
	MemoryShare           float64
	ArithShare            float64
	OtherShare            float64
	Table                 *metrics.Table
}

// RunTable1 reproduces Table 1.
func RunTable1(cfg Config) *Table1Result {
	lookups := pickSize(cfg, 2000, 20000)
	f := newLookupFixture(1<<14, 0.75)
	for i := 0; i < lookups; i++ { // warm
		f.table.TimedLookup(f.thread, testKey(uint64(i)%f.fill), cuckoo.DefaultLookupOptions())
	}
	f.thread.ResetCounts()
	for i := 0; i < lookups; i++ {
		f.table.TimedLookup(f.thread, testKey(uint64(i*13)%f.fill), cuckoo.DefaultLookupOptions())
	}
	c := f.thread.Counts
	n := float64(lookups)
	total := float64(c.Total())
	res := &Table1Result{
		InstructionsPerLookup: total / n,
		LoadShare:             float64(c.Loads) / total,
		StoreShare:            float64(c.Stores) / total,
		MemoryShare:           float64(c.Loads+c.Stores) / total,
		ArithShare:            float64(c.Arith) / total,
		OtherShare:            float64(c.Other) / total,
	}
	res.Table = metrics.NewTable("Table 1: instructions per software lookup",
		"solution", "#instr/lookup", "memory", "(load)", "(store)", "arith", "other")
	res.Table.SetCaption("paper: 210 instr; 48.1%% memory (36.2%% load, 11.8%% store), 21.0%% arith, 30.9%% other")
	res.Table.AddRow("OVS/cuckoo hash", res.InstructionsPerLookup,
		metrics.Percent(res.MemoryShare), metrics.Percent(res.LoadShare),
		metrics.Percent(res.StoreShare), metrics.Percent(res.ArithShare),
		metrics.Percent(res.OtherShare))
	return res
}
