package cuckoo

import (
	"halo/internal/cpu"
	"halo/internal/hashfn"
)

// altOf is a local alias keeping the timed path readable.
func altOf(bucket uint64, sig uint16, bucketCount uint64) uint64 {
	return hashfn.AltBucket(bucket, sig, bucketCount)
}

// This file contains the *timed* software lookup and update paths: the same
// algorithms as the functional ones, but executed against a cpu.Thread so
// that every load, store and arithmetic instruction the compiled DPDK-style
// code would retire is charged to the simulated core. The per-category
// instruction budget is calibrated against paper Table 1 (≈210 instructions
// per lookup: 36.2% loads, 11.8% stores, 21.0% arithmetic, 30.9% other) and
// validated by tests and the table1 experiment.

// maxLookupRetries bounds the optimistic-lock retry loop: after this many
// re-probes under a still-moving version counter the lookup gives up.
const maxLookupRetries = 3

// LookupOptions controls the timed lookup path.
type LookupOptions struct {
	// OptimisticLock enables the DPDK-style version-counter protocol
	// around the probe (read counter, probe, re-read, retry on change).
	// The paper measures this at ~13.1% of lookup time (§3.4).
	//
	// Give-up semantics: unlike rte_hash, which spins until the counter
	// settles, the simulated loop re-probes at most maxLookupRetries times
	// and then returns the final probe's result even though it may be torn
	// (a bounded tail beats an unbounded spin in a cycle-accurate model).
	// Every re-probe increments TableStats.Retries and every give-up
	// increments TableStats.RetryExhausted — surfaced in the stats snapshot
	// as cuckoo.lookup.retries and cuckoo.lookup.retry_exhausted — so an
	// exhausted retry loop is never silent.
	OptimisticLock bool
	// Prefetch issues software prefetches for both candidate buckets right
	// after hashing, as rte_hash's bulk lookup does.
	Prefetch bool
}

// DefaultLookupOptions matches the optimized DPDK baseline of §5.1.
func DefaultLookupOptions() LookupOptions {
	return LookupOptions{OptimisticLock: true, Prefetch: true}
}

// TimedLookup performs a software flow-rule lookup, charging th for the work
// and returning the value. The functional result always matches Lookup, and
// so does the stats accounting: a mismatched key length is a counted miss on
// both paths (here it additionally charges the prologue and the early
// return, since the compiled code would retire those instructions too).
func (t *Table) TimedLookup(th *cpu.Thread, key []byte, opts LookupOptions) (value uint64, ok bool) {
	t.stats.Lookups++
	start := th.Now

	// Function prologue and call-chain overhead. The DPDK lookup path runs
	// through three call layers (rte_hash_lookup → lookup_with_hash →
	// compare); the constants here reproduce the retired-instruction
	// profile Intel VTune reports for it (paper Table 1: ~210 instructions,
	// 36.2% loads / 11.8% stores / 21.0% arithmetic / 30.9% other).
	th.Other(26)
	th.LocalStore(15)
	th.LocalLoad(20)

	if len(key) != t.keyLen {
		// Length check + immediate unwind of the call chain.
		th.ALU(2)
		th.LocalLoad(4)
		th.Other(6)
		th.Record("lat.lookup.software", th.Now-start)
		return 0, false
	}

	// Load table handle fields (bucket base, counts, seeds — hot in L1).
	th.LocalLoad(5)

	// Hash the key: one 8-byte chunk per iteration, ~6 ALU each, plus
	// finalisation.
	words := (t.keyLen + 7) / 8
	th.LocalLoad(words) // key bytes: just-parsed header, core-local
	th.ALU(6*words + 8)

	h, sig, b1, b2 := t.Hashes(key)

	// Bucket index arithmetic: mask, signature derivation, alt-bucket calc.
	th.ALU(8)
	_ = h

	var verBefore uint32
	for attempt := 0; ; attempt++ {
		if opts.OptimisticLock {
			// Read the table change counter (shared line; contended under
			// writes) and keep it for the post-probe check.
			th.Load(t.VersionAddr())
			th.ALU(1)
			verBefore = t.Version()
		}
		if opts.Prefetch {
			th.Prefetch(t.BucketAddr(b1))
			if !t.IsSFH() {
				th.Prefetch(t.BucketAddr(b2))
			}
		}

		value, ok = t.timedProbe(th, key, sig, b1, b2)
		if t.probeHook != nil {
			t.probeHook()
		}

		if !opts.OptimisticLock {
			break
		}
		// Re-read the counter; retry the probe if a writer interleaved.
		th.Load(t.VersionAddr())
		th.ALU(2)
		th.Other(1)
		if t.Version() == verBefore {
			break
		}
		if attempt >= maxLookupRetries {
			// Give up and return the last probe's (possibly torn) result;
			// see LookupOptions.OptimisticLock.
			t.stats.RetryExhausted++
			break
		}
		t.stats.Retries++
	}

	// Epilogue: restore spills, unwind the call chain, return.
	th.LocalLoad(36)
	th.LocalStore(4)
	th.Other(28)
	if ok {
		t.stats.Hits++
	}
	th.Record("lat.lookup.software", th.Now-start)
	return value, ok
}

// timedProbe scans both candidate buckets, charging the thread.
func (t *Table) timedProbe(th *cpu.Thread, key []byte, sig uint16, b1, b2 uint64) (uint64, bool) {
	words := (t.keyLen + 7) / 8
	buckets := [2]uint64{b1, b2}
	n := 2
	if t.IsSFH() {
		n = 1
	}
	for bi := 0; bi < n; bi++ {
		b := buckets[bi]
		// Load the bucket line (first entry is the demand load; the other
		// seven 8-byte entries come from the same line).
		th.Load(t.BucketAddr(b))
		th.LocalLoad(EntriesPerBucket - 1)
		// Compare all eight signatures (vectorised in DPDK, but the
		// comparison µops still retire) + branch.
		th.ALU(EntriesPerBucket)
		th.Other(2)

		for e := 0; e < EntriesPerBucket; e++ {
			s, idx := t.readEntry(b, e)
			if s != sig {
				continue
			}
			// Signature hit: fetch the key-value pair and compare keys.
			th.Load(t.KVAddr(idx))
			th.LocalLoad(words - 1 + 1) // remaining key words + value word
			th.ALU(2*words + 2)
			th.Other(2)
			if t.keyEqual(idx, key) {
				return t.readValue(idx), true
			}
		}
		// Loop overhead between buckets.
		th.Other(3)
		th.ALU(2)
	}
	return 0, false
}

// TimedInsert performs a software insert, charging th. It models the
// write-side locking cost (counter bumps around every bucket modification)
// on top of the displacement walk.
func (t *Table) TimedInsert(th *cpu.Thread, key []byte, value uint64) error {
	if len(key) != t.keyLen {
		return ErrKeyLen
	}
	start := th.Now
	defer func() { th.Record("lat.insert.software", th.Now-start) }()
	th.Other(6)
	th.LocalStore(8)
	th.LocalLoad(6)

	words := (t.keyLen + 7) / 8
	th.LocalLoad(words)
	th.ALU(6*words + 16)

	_, sig, b1, b2 := t.Hashes(key)

	// Probe for duplicates (mirrors the lookup probe cost).
	if _, exists := t.timedProbe(th, key, sig, b1, b2); exists {
		th.Other(4)
		return ErrKeyExists
	}
	if len(t.free) == 0 {
		return ErrTableFull
	}

	// Try to place directly; each attempted bucket is already hot from the
	// probe, but the stores to bucket + KV lines are real.
	place := func(b uint64) bool {
		for e := 0; e < EntriesPerBucket; e++ {
			if s, _ := t.readEntry(b, e); s == 0 {
				idx := t.free[len(t.free)-1]
				t.free = t.free[:len(t.free)-1]
				// Write key+value (slot line) then publish the entry.
				th.Store(t.KVAddr(idx))
				th.LocalStore(words)
				th.Store(t.entryAddr(b, e))
				th.ALU(4)
				t.writeKV(idx, key, value)
				t.writeEntry(b, e, sig, idx)
				t.size++
				return true
			}
		}
		return false
	}
	if place(b1) {
		th.Other(4)
		t.stats.Inserts++
		return nil
	}
	if !t.IsSFH() && place(b2) {
		th.Other(4)
		t.stats.Inserts++
		return nil
	}
	if t.IsSFH() {
		return ErrTableFull
	}

	// Displacement path: each move is two bucket stores plus two counter
	// bumps (the write-side of the optimistic lock).
	path := t.findCuckooPath(b1, b2)
	if path == nil {
		return ErrTableFull
	}
	// Charge each move: read the entry, bump the counter (write begins),
	// store to the alternative bucket, clear the source entry, bump the
	// counter again (write visible).
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		th.Load(t.BucketAddr(n.bucket))
		th.ALU(8)
		th.Store(t.VersionAddr())
		sig, _ := t.readEntry(n.bucket, n.slot)
		alt := altOf(n.bucket, sig, t.bucketCount)
		th.Store(t.BucketAddr(alt))
		th.Store(t.BucketAddr(n.bucket))
		th.Store(t.VersionAddr())
		th.Other(3)
	}
	t.applyCuckooPath(path)
	if place(b1) || place(b2) {
		th.Other(4)
		t.stats.Inserts++
		return nil
	}
	return ErrTableFull
}

// TimedDelete removes a key, charging th for the probe, the counter bumps
// and the entry-clearing store.
func (t *Table) TimedDelete(th *cpu.Thread, key []byte) bool {
	if len(key) != t.keyLen {
		return false
	}
	start := th.Now
	defer func() { th.Record("lat.delete.software", th.Now-start) }()
	th.Other(6)
	th.LocalStore(6)
	th.LocalLoad(4)

	words := (t.keyLen + 7) / 8
	th.LocalLoad(words)
	th.ALU(6*words + 10)

	_, sig, b1, b2 := t.Hashes(key)
	if _, found := t.timedProbe(th, key, sig, b1, b2); !found {
		th.Other(4)
		return false
	}
	// Bump the change counter, clear the entry, bump again.
	th.Store(t.VersionAddr())
	th.Store(t.BucketAddr(b1)) // the entry store (bucket already identified)
	th.Store(t.VersionAddr())
	th.ALU(4)
	th.Other(4)
	return t.Delete(key)
}
