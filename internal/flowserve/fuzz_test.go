package flowserve

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// The fuzzed table stays tiny so random op streams reach the interesting
// regimes — displacement chains, full shards — and it keeps several shards
// so shard routing itself is under test. Mirrors internal/cuckoo's harness.
const (
	fuzzShards       = 4
	fuzzTableEntries = 64
	fuzzKeyUniverse  = 96 // ~1.5x capacity: fills the table and keeps colliding
)

// fuzzMaxCapacity bounds fuzz-driven Grow so a hostile op stream cannot
// balloon allocations; it still allows several doublings from the seed size.
const fuzzMaxCapacity = 1 << 12

// applyFuzzOps interprets data as a stream of 4-byte operations
// (kind, key-lo, key-hi, value) applied to a sharded table and to a plain
// map reference model, failing on any behavioural divergence. Grow and
// ResizeStep are ops in the stream, so the fuzzer interleaves incremental
// migration with every other operation at arbitrary points. Single
// goroutine: linearizable semantics are the spec here; concurrency is the
// stress test's job.
func applyFuzzOps(t *testing.T, data []byte) {
	tbl, err := New(Config{Shards: fuzzShards, Entries: fuzzTableEntries, KeyLen: 20})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	model := map[uint16]uint64{}
	var batch *Batch

	for off := 0; off+4 <= len(data); off += 4 {
		kind := data[off]
		mk := binary.LittleEndian.Uint16(data[off+1:off+3]) % fuzzKeyUniverse
		val := uint64(data[off+3])
		k := key20(uint64(mk))
		switch kind % 7 {
		case 0: // insert
			err := tbl.Insert(k, val)
			_, exists := model[mk]
			switch {
			case exists:
				if err != ErrKeyExists {
					t.Fatalf("op %d: Insert(dup key %d) = %v, want ErrKeyExists", off/4, mk, err)
				}
			case err == nil:
				model[mk] = val
			case err != ErrTableFull:
				t.Fatalf("op %d: Insert(new key %d) = %v, want nil or ErrTableFull", off/4, mk, err)
			}
		case 1: // delete
			got := tbl.Delete(k)
			if _, exists := model[mk]; got != exists {
				t.Fatalf("op %d: Delete(key %d) = %v, model has it: %v", off/4, mk, got, exists)
			}
			delete(model, mk)
		case 2: // lookup
			v, ok := tbl.Lookup(k)
			want, exists := model[mk]
			if ok != exists || (ok && v != want) {
				t.Fatalf("op %d: Lookup(key %d) = (%d,%v), model says (%d,%v)", off/4, mk, v, ok, want, exists)
			}
		case 3: // update
			got := tbl.Update(k, val)
			if _, exists := model[mk]; got != exists {
				t.Fatalf("op %d: Update(key %d) = %v, model has it: %v", off/4, mk, got, exists)
			}
			if got {
				model[mk] = val
			}
		case 4: // batched lookup of a key window starting at mk
			if batch == nil {
				batch = tbl.NewBatch()
			}
			const span = 8
			keys := make([][]byte, span)
			results := make([]Result, span)
			for j := 0; j < span; j++ {
				keys[j] = key20(uint64((mk + uint16(j)) % fuzzKeyUniverse))
			}
			batch.LookupMany(keys, results)
			for j := 0; j < span; j++ {
				wk := (mk + uint16(j)) % fuzzKeyUniverse
				want, exists := model[wk]
				if results[j].OK != exists || (results[j].OK && results[j].Value != want) {
					t.Fatalf("op %d: LookupMany(key %d) = (%d,%v), model says (%d,%v)",
						off/4, wk, results[j].Value, results[j].OK, want, exists)
				}
			}
		case 5: // grow by an odd increment (exercises irregular region sizes)
			if c := tbl.Capacity(); c < fuzzMaxCapacity {
				if err := tbl.Grow(c + 1 + uint64(val)); err != nil {
					t.Fatalf("op %d: Grow(%d) = %v", off/4, c+1+uint64(val), err)
				}
			}
		case 6: // tick migration forward a few buckets
			tbl.ResizeStep(1 + int(val%4))
		}
		if tbl.Size() != uint64(len(model)) {
			t.Fatalf("op %d: Size = %d, model has %d entries", off/4, tbl.Size(), len(model))
		}
	}

	// Closing sweep: every model entry must be retrievable.
	for mk, want := range model {
		if v, ok := tbl.Lookup(key20(uint64(mk))); !ok || v != want {
			t.Fatalf("final sweep: Lookup(key %d) = (%d,%v), want (%d,true)", mk, v, ok, want)
		}
	}
}

// fuzzSeeds builds corpus inputs covering the paths random bytes take a
// while to find: fill-to-full, churn (displacement chains), batched probes
// over live/dead mixes.
func fuzzSeeds() [][]byte {
	op := func(kind byte, key uint16, val byte) []byte {
		b := make([]byte, 4)
		b[0] = kind
		binary.LittleEndian.PutUint16(b[1:3], key)
		b[3] = val
		return b
	}
	var fill bytes.Buffer // insert past capacity, then probe every key
	for i := 0; i < fuzzKeyUniverse; i++ {
		fill.Write(op(0, uint16(i), byte(i)))
	}
	for i := 0; i < fuzzKeyUniverse; i++ {
		fill.Write(op(2, uint16(i), 0))
	}
	var churn bytes.Buffer // fill, then alternate delete/insert/update/batch
	for i := 0; i < fuzzTableEntries; i++ {
		churn.Write(op(0, uint16(i), byte(i)))
	}
	for i := 0; i < fuzzTableEntries; i++ {
		churn.Write(op(1, uint16(i*7)%fuzzKeyUniverse, 0))
		churn.Write(op(0, uint16(i*13)%fuzzKeyUniverse, byte(i)))
		churn.Write(op(3, uint16(i*3)%fuzzKeyUniverse, byte(i+1)))
		churn.Write(op(4, uint16(i*5)%fuzzKeyUniverse, 0))
	}
	var grow bytes.Buffer // fill, grow, interleave migration ticks with churn
	for i := 0; i < fuzzTableEntries; i++ {
		grow.Write(op(0, uint16(i), byte(i)))
	}
	grow.Write(op(5, 0, 200)) // capacity + 201: irregular region size
	for i := 0; i < fuzzTableEntries; i++ {
		grow.Write(op(6, 0, byte(i)))                          // ResizeStep
		grow.Write(op(2, uint16(i), 0))                        // lookup mid-migration
		grow.Write(op(1, uint16(i*5)%fuzzKeyUniverse, 0))      // delete
		grow.Write(op(0, uint16(i*11)%fuzzKeyUniverse, byte(i))) // insert
		grow.Write(op(4, uint16(i*3)%fuzzKeyUniverse, 0))      // batch
		if i%16 == 0 {
			grow.Write(op(5, 0, byte(i))) // stack further grows
		}
	}
	for i := 0; i < fuzzKeyUniverse; i++ {
		grow.Write(op(2, uint16(i), 0))
	}
	return [][]byte{
		{},
		op(0, 1, 42),
		bytes.Repeat(op(0, 5, 9), 3), // duplicate inserts
		fill.Bytes(),
		churn.Bytes(),
		grow.Bytes(),
	}
}

// FuzzFlowServeOps cross-checks the sharded native-memory table against a
// plain map under arbitrary op sequences.
// Run with: go test -fuzz=FuzzFlowServeOps ./internal/flowserve
func FuzzFlowServeOps(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip("cap op-stream length")
		}
		applyFuzzOps(t, data)
	})
}

// TestFuzzSeedCorpus runs the seed inputs through the fuzz body in plain
// `go test` runs, so CI exercises displacement and full-table paths without
// a fuzzing engine.
func TestFuzzSeedCorpus(t *testing.T) {
	for i, seed := range fuzzSeeds() {
		seed := seed
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			applyFuzzOps(t, seed)
		})
	}
}
