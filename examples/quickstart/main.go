// Quickstart: create a flow table on the simulated platform, look flows up
// through the software path and through the HALO accelerators, and compare
// cycle costs — the paper's core claim in thirty lines.
package main

import (
	"encoding/binary"
	"fmt"

	"halo"
)

func key(i uint64) []byte {
	k := make([]byte, 16)
	binary.LittleEndian.PutUint64(k, i)
	binary.LittleEndian.PutUint64(k[8:], i^0x5eed)
	return k
}

func main() {
	sys := halo.New() // 16 cores, 32 MB LLC, one accelerator per slice

	table, err := sys.NewTable(halo.TableConfig{Entries: 1 << 16, KeyLen: 16})
	if err != nil {
		panic(err)
	}
	const flows = 40_000
	for i := uint64(0); i < flows; i++ {
		if err := table.Insert(key(i), i*10); err != nil {
			panic(err)
		}
	}
	sys.WarmTable(table) // pull the table into the LLC, as the paper does

	th := sys.Thread(0)
	const lookups = 5000

	// Software path: the optimized DPDK-style cuckoo lookup.
	start := th.Now
	for i := uint64(0); i < lookups; i++ {
		v, ok := table.TimedLookup(th, key(i%flows), halo.SoftwareLookupDefaults())
		if !ok || v != (i%flows)*10 {
			panic("software lookup wrong")
		}
	}
	software := float64(th.Now-start) / lookups

	// HALO blocking path: the LOOKUP_B instruction.
	start = th.Now
	for i := uint64(0); i < lookups; i++ {
		v, ok := sys.Unit().LookupB(th, table.Base(), key(i%flows))
		if !ok || v != (i%flows)*10 {
			panic("halo lookup wrong")
		}
	}
	blocking := float64(th.Now-start) / lookups

	// HALO blocking path with the key already in a packet buffer (the NFV
	// case: the NIC DMA'd the header into the LLC — no staging stores, no
	// dirty-line snoop for the accelerator's key fetch).
	bufs := sys.AllocLines(64)
	start = th.Now
	for i := uint64(0); i < lookups; i++ {
		keyAddr := bufs + halo.Addr(i%64)*64
		sys.DMAWrite(keyAddr, key(i%flows))
		v, ok := sys.Unit().LookupBAt(th, table.Base(), keyAddr)
		if !ok || v != (i%flows)*10 {
			panic("halo in-place lookup wrong")
		}
	}
	inPlace := float64(th.Now-start) / lookups

	// HALO non-blocking path: LOOKUP_NB batches + SNAPSHOT_READ polling.
	queries := make([]halo.NBQuery, lookups)
	for i := range queries {
		queries[i] = halo.NBQuery{TableAddr: table.Base(), Key: key(uint64(i) % flows)}
	}
	start = th.Now
	results := sys.Unit().LookupManyNB(th, queries)
	for i, r := range results {
		if !r.Found || r.Value != (uint64(i)%flows)*10 {
			panic("halo NB lookup wrong")
		}
	}
	nonBlocking := float64(th.Now-start) / lookups

	fmt.Printf("flow-rule lookup cost over a %d-flow table (LLC-resident):\n", flows)
	fmt.Printf("  software (cuckoo hash):      %6.1f cycles/lookup\n", software)
	fmt.Printf("  HALO LOOKUP_B (staged key):  %6.1f cycles/lookup  (%.2fx)\n", blocking, software/blocking)
	fmt.Printf("  HALO LOOKUP_B (pkt buffer):  %6.1f cycles/lookup  (%.2fx)\n", inPlace, software/inPlace)
	fmt.Printf("  HALO LOOKUP_NB batched:      %6.1f cycles/lookup  (%.2fx)\n", nonBlocking, software/nonBlocking)
	fmt.Printf("accelerator stats: %v\n", sys.Unit())
}
